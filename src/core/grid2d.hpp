// Dense row-major 2-D grid, the storage substrate for all stencil codes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/error.hpp"

namespace peachy {

/// Dense row-major 2-D array of trivially copyable cells.
///
/// Indexing is (y, x) to match the paper's sandpile(y, x) convention
/// (Fig. 2). The grid owns its storage; copies are deep.
template <typename T>
class Grid2D {
 public:
  Grid2D() = default;

  /// Creates a height x width grid with every cell set to `fill`.
  Grid2D(int height, int width, T fill = T{})
      : height_(height), width_(width),
        cells_(checked_cell_count(height, width), fill) {}

  int height() const { return height_; }
  int width() const { return width_; }
  std::size_t size() const { return cells_.size(); }
  bool empty() const { return cells_.empty(); }

  /// Unchecked element access, row-major (y, x).
  T& operator()(int y, int x) { return cells_[idx(y, x)]; }
  const T& operator()(int y, int x) const { return cells_[idx(y, x)]; }

  /// Bounds-checked element access; throws peachy::Error when out of range.
  T& at(int y, int x) {
    check_bounds(y, x);
    return cells_[idx(y, x)];
  }
  const T& at(int y, int x) const {
    check_bounds(y, x);
    return cells_[idx(y, x)];
  }

  bool in_bounds(int y, int x) const {
    return y >= 0 && y < height_ && x >= 0 && x < width_;
  }

  /// Raw pointer to row `y` (row-major contiguous storage).
  T* row(int y) { return cells_.data() + idx(y, 0); }
  const T* row(int y) const { return cells_.data() + idx(y, 0); }

  T* data() { return cells_.data(); }
  const T* data() const { return cells_.data(); }

  void fill(T value) { std::fill(cells_.begin(), cells_.end(), value); }

  /// Sum of all cells in a wider accumulator type.
  template <typename Acc = std::int64_t>
  Acc sum() const {
    Acc acc{};
    for (const T& c : cells_) acc += static_cast<Acc>(c);
    return acc;
  }

  friend bool operator==(const Grid2D& a, const Grid2D& b) {
    return a.height_ == b.height_ && a.width_ == b.width_ &&
           a.cells_ == b.cells_;
  }

 private:
  // Validates dimensions before the vector is constructed (member-init
  // order would otherwise build the vector first).
  static std::size_t checked_cell_count(int height, int width) {
    PEACHY_REQUIRE(height >= 0 && width >= 0,
                   "grid dimensions must be non-negative: " << height << "x"
                                                            << width);
    return static_cast<std::size_t>(height) * static_cast<std::size_t>(width);
  }

  std::size_t idx(int y, int x) const {
    return static_cast<std::size_t>(y) * width_ + x;
  }
  void check_bounds(int y, int x) const {
    PEACHY_REQUIRE(in_bounds(y, x), "grid index (" << y << "," << x
                                                   << ") out of " << height_
                                                   << "x" << width_);
  }

  int height_ = 0;
  int width_ = 0;
  std::vector<T> cells_;
};

}  // namespace peachy
