// Fixed-size worker pool used by the MapReduce engine and the pap hybrid
// dispatcher. (OpenMP handles the stencil loops; the pool serves the parts
// of the system that need explicit task queues.)
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace peachy {

/// Fixed-size thread pool with a FIFO task queue.
///
/// Tasks are std::function<void()>; submit() returns a future for the
/// wrapped callable. The destructor drains the queue, then joins.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; throws peachy::Error otherwise).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a callable; the returned future yields its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all done.
  /// Work is split into contiguous chunks (at most 4 per worker).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace peachy
