// Compatibility shim over the work-stealing task runtime (task_runtime.hpp).
//
// Historically this was a mutex-queue worker pool constructed per phase by
// the MapReduce engine; the worker threads now live in the process-wide
// TaskArena and a ThreadPool is just a lightweight handle that (a) caps the
// concurrency of its parallel_for at the requested width and (b) tracks its
// own submitted tasks so the destructor can drain them. Constructing and
// destroying a ThreadPool no longer spawns or joins any thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <type_traits>

#include "core/task_runtime.hpp"

namespace peachy {

/// Thread-pool facade: submit() posts detached tasks to the shared
/// TaskArena, parallel_for runs the runtime's chunked work-stealing loop
/// capped at this pool's width. The destructor blocks until every task
/// submitted through this pool has finished.
class ThreadPool {
 public:
  /// `threads` (>= 1; throws peachy::Error otherwise) caps parallel_for
  /// concurrency. No OS threads are created.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return threads_; }

  /// Enqueues a callable on the shared arena; the returned future yields
  /// its result (or rethrows its exception).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across at most thread_count() lanes and
  /// blocks until all done. An exception thrown by fn is rethrown exactly
  /// once on the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void enqueue(std::function<void()> task);

  TaskArena& arena_;
  std::size_t threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  bool stopping_ = false;
};

}  // namespace peachy
