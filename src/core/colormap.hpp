// Color maps used by the paper's visual artifacts.
//
// - sandpile_color: the Fig. 1 palette (0 grains = black, 1 = green,
//   2 = blue, 3 = red; unstable cells >= 4 = white).
// - DivergingScale: the red/blue scale behind the warming stripes (Fig. 6),
//   built after the ColorBrewer RdBu ramp used by showyourstripes.info.
// - distinct_color: qualitative palette for per-worker/per-owner tile maps
//   (Fig. 3 / Fig. 4 style trace displays).
#pragma once

#include <cstdint>
#include <vector>

#include "core/image.hpp"

namespace peachy {

/// Fig. 1 palette for a sandpile cell's grain count.
Rgb sandpile_color(std::int64_t grains);

/// Smooth diverging blue->white->red scale over [lo, hi], matching the
/// warming-stripes convention (cold = deep blue, hot = deep red).
class DivergingScale {
 public:
  /// Values at or below `lo` map to the deepest blue, at or above `hi` to
  /// the deepest red. Requires lo < hi.
  DivergingScale(double lo, double hi);

  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Maps a value to a color; values outside [lo, hi] are clamped.
  Rgb operator()(double value) const;

  /// Color for a missing observation (grey, as on showyourstripes.info).
  static Rgb missing() { return Rgb{180, 180, 180}; }

 private:
  double lo_, hi_;
};

/// Qualitative palette: returns a visually distinct color for small indices
/// (cycled for large ones). Index -1 is reserved for "idle/stable" = black,
/// matching Fig. 4 where black tiles are the stable (skipped) ones.
Rgb distinct_color(int index);

}  // namespace peachy
