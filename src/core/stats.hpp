// Streaming and batch statistics used by trace analysis and benchmarks.
#pragma once

#include <cstddef>
#include <vector>

namespace peachy {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, sum_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by linear interpolation.
/// Copies and sorts internally; throws peachy::Error on empty input.
double quantile(std::vector<double> values, double q);

/// Load-imbalance ratio: max(loads) / mean(loads). 1.0 = perfectly balanced.
/// Throws peachy::Error if loads is empty or the mean is zero.
double imbalance_ratio(const std::vector<double>& loads);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double x);
  int bins() const { return static_cast<int>(counts_.size()); }
  std::size_t count(int bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  /// Inclusive lower edge of bucket `bin`.
  double edge(int bin) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace peachy
