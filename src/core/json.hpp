// Minimal JSON document model with parser and serializer.
//
// Supports the full JSON grammar except exotic number formats beyond
// double precision. Used for workflow import/export (WfCommons-style
// descriptions in src/wfsim/wfjson.hpp) and any experiment metadata.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/error.hpp"

namespace peachy::json {

class Value;

using Array = std::vector<Value>;
/// Object keys keep insertion-independent (sorted) order via std::map —
/// serialization is therefore canonical.
using Object = std::map<std::string, Value>;

/// A JSON value (null, bool, number, string, array or object).
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(std::int64_t i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  /// Typed accessors; throw peachy::Error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  /// Number narrowed to integer; throws if not integral within 2^53.
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object member access; throws if not an object or key missing.
  const Value& at(const std::string& key) const;
  /// True if this is an object containing `key`.
  bool contains(const std::string& key) const;

  /// Serializes compactly (no whitespace) or pretty-printed with 2-space
  /// indentation when `indent` is true.
  std::string dump(bool indent = false) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }

 private:
  void dump_to(std::string& out, int depth, bool indent) const;
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
/// Throws peachy::Error with position info on malformed input.
Value parse(const std::string& text);

}  // namespace peachy::json
