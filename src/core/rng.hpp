// Deterministic, seedable pseudo-random number generation.
//
// All synthetic workloads (sparse sandpile configurations, DWD-like climate
// data, MapReduce property-test inputs, workflow task jitter) draw from
// these generators so every experiment is reproducible bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>

namespace peachy {

/// SplitMix64 — used to seed Xoshiro and for cheap hashing.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, deterministic.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return ((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Standard normal via Box–Muller (one value per call; no caching so the
  /// stream stays reproducible under reordering).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform();
    while (u1 == 0.0) u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(6.28318530717958647692 * u2);
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace peachy
