#include "core/args.hpp"

#include "core/error.hpp"

namespace peachy {

Args::Args(int argc, const char* const* argv,
           const std::set<std::string>& flag_names) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    if (flag_names.count(body)) {
      flags_.insert(body);
      continue;
    }
    PEACHY_REQUIRE(i + 1 < argc, "option --" << body << " needs a value");
    options_[body] = argv[++i];
  }
}

bool Args::has(const std::string& name) const {
  return flags_.count(name) > 0 || options_.count(name) > 0;
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  const auto it = options_.find(name);
  if (it != options_.end()) return it->second;
  PEACHY_REQUIRE(!flags_.count(name),
                 "--" << name << " was given without a value");
  return fallback;
}

int Args::get_int(const std::string& name, int fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    std::size_t used = 0;
    const int v = std::stoi(it->second, &used);
    PEACHY_REQUIRE(used == it->second.size(), "bad integer for --"
                                                  << name << ": "
                                                  << it->second);
    return v;
  } catch (const Error&) {
    throw;
  } catch (...) {
    throw Error("bad integer for --" + name + ": " + it->second);
  }
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double v = std::stod(it->second, &used);
    PEACHY_REQUIRE(used == it->second.size(), "bad number for --"
                                                  << name << ": "
                                                  << it->second);
    return v;
  } catch (const Error&) {
    throw;
  } catch (...) {
    throw Error("bad number for --" + name + ": " + it->second);
  }
}

std::vector<std::string> Args::unknown_options(
    const std::set<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : options_)
    if (!known.count(name)) unknown.push_back(name);
  for (const auto& name : flags_)
    if (!known.count(name)) unknown.push_back(name);
  return unknown;
}

}  // namespace peachy
