#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace peachy {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> values, double q) {
  PEACHY_REQUIRE(!values.empty(), "quantile of empty sample");
  PEACHY_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]: " << q);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  if (i + 1 >= values.size()) return values.back();
  const double frac = pos - static_cast<double>(i);
  return values[i] * (1.0 - frac) + values[i + 1] * frac;
}

double imbalance_ratio(const std::vector<double>& loads) {
  PEACHY_REQUIRE(!loads.empty(), "imbalance of empty load vector");
  double sum = 0.0, mx = loads.front();
  for (double v : loads) {
    sum += v;
    mx = std::max(mx, v);
  }
  const double mean = sum / static_cast<double>(loads.size());
  PEACHY_REQUIRE(mean > 0.0, "imbalance undefined for zero mean load");
  return mx / mean;
}

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  PEACHY_REQUIRE(lo < hi && bins > 0,
                 "bad histogram spec [" << lo << "," << hi << ") x " << bins);
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<long>(t * static_cast<double>(counts_.size()));
  bin = std::clamp(bin, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::edge(int bin) const {
  PEACHY_REQUIRE(bin >= 0 && bin <= bins(), "bad bin " << bin);
  return lo_ + (hi_ - lo_) * bin / static_cast<double>(bins());
}

}  // namespace peachy
