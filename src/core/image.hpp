// Minimal dependency-free RGB image type with binary PPM (P6) I/O.
//
// EASYPAP renders live with SDL; in this headless reproduction every visual
// artifact (Fig. 1, Fig. 4 tile maps, Fig. 6 warming stripes) is written as
// a PPM file instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace peachy {

/// 8-bit RGB color.
struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
  friend bool operator==(const Rgb&, const Rgb&) = default;
};

/// Row-major 8-bit RGB raster image.
class Image {
 public:
  Image() = default;
  Image(int height, int width, Rgb fill = Rgb{});

  int height() const { return height_; }
  int width() const { return width_; }

  Rgb& operator()(int y, int x) { return pixels_[idx(y, x)]; }
  const Rgb& operator()(int y, int x) const { return pixels_[idx(y, x)]; }

  /// Fills the axis-aligned rectangle [y0,y0+h) x [x0,x0+w), clipped to the
  /// image bounds.
  void fill_rect(int y0, int x0, int h, int w, Rgb color);

  /// Nearest-neighbour integer upscale (each pixel becomes factor x factor).
  Image upscaled(int factor) const;

  /// Writes a binary PPM (P6). Throws peachy::Error on I/O failure.
  void write_ppm(const std::string& path) const;

  /// Reads a binary PPM (P6) written by write_ppm (or any conforming file).
  static Image read_ppm(const std::string& path);

 private:
  std::size_t idx(int y, int x) const {
    return static_cast<std::size_t>(y) * width_ + x;
  }

  int height_ = 0;
  int width_ = 0;
  std::vector<Rgb> pixels_;
};

}  // namespace peachy
