#include "core/colormap.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/error.hpp"

namespace peachy {

Rgb sandpile_color(std::int64_t grains) {
  switch (grains) {
    case 0: return Rgb{0, 0, 0};        // black
    case 1: return Rgb{0, 200, 0};      // green
    case 2: return Rgb{40, 80, 255};    // blue
    case 3: return Rgb{230, 40, 40};    // red
    default: return Rgb{255, 255, 255}; // unstable: white
  }
}

namespace {

// ColorBrewer 11-class RdBu, reversed so index 0 is the coldest blue.
// This is the ramp Ed Hawkins' warming stripes are built on.
constexpr std::array<Rgb, 11> kRdBuReversed = {{
    {5, 48, 97},     {33, 102, 172},  {67, 147, 195},  {146, 197, 222},
    {209, 229, 240}, {247, 247, 247}, {253, 219, 199}, {244, 165, 130},
    {214, 96, 77},   {178, 24, 43},   {103, 0, 31},
}};

Rgb lerp(Rgb a, Rgb b, double t) {
  auto mix = [t](std::uint8_t x, std::uint8_t y) {
    return static_cast<std::uint8_t>(std::lround(x + (y - x) * t));
  };
  return Rgb{mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b)};
}

}  // namespace

DivergingScale::DivergingScale(double lo, double hi) : lo_(lo), hi_(hi) {
  PEACHY_REQUIRE(lo < hi, "diverging scale needs lo < hi, got [" << lo << ","
                                                                 << hi << "]");
}

Rgb DivergingScale::operator()(double value) const {
  const double t = std::clamp((value - lo_) / (hi_ - lo_), 0.0, 1.0);
  const double pos = t * (kRdBuReversed.size() - 1);
  const int i = std::min(static_cast<int>(pos),
                         static_cast<int>(kRdBuReversed.size()) - 2);
  return lerp(kRdBuReversed[i], kRdBuReversed[i + 1], pos - i);
}

Rgb distinct_color(int index) {
  if (index < 0) return Rgb{0, 0, 0};
  // 12-class qualitative palette (Paired-like), bright enough on black.
  static constexpr std::array<Rgb, 12> kPalette = {{
      {166, 206, 227}, {31, 120, 180}, {178, 223, 138}, {51, 160, 44},
      {251, 154, 153}, {227, 26, 28},  {253, 191, 111}, {255, 127, 0},
      {202, 178, 214}, {106, 61, 154}, {255, 255, 153}, {177, 89, 40},
  }};
  return kPalette[static_cast<std::size_t>(index) % kPalette.size()];
}

}  // namespace peachy
