// Minimal command-line option parsing for the example drivers.
//
// Supports --name value and --name=value options plus bare --flag
// switches; positional arguments are collected in order. Unknown options
// are detectable so drivers can reject typos.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace peachy {

/// Parsed command line.
class Args {
 public:
  /// Parses argv; `flag_names` lists options that take no value (anything
  /// else starting with "--" consumes the next token or its "=..." part).
  Args(int argc, const char* const* argv,
       const std::set<std::string>& flag_names = {});

  /// True if --name was given (as flag or option).
  bool has(const std::string& name) const;

  /// Option value with default; throws peachy::Error if present but used
  /// as a flag (no value).
  std::string get(const std::string& name, const std::string& fallback) const;
  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names seen on the command line that are not in `known` — for typo
  /// detection by drivers.
  std::vector<std::string> unknown_options(
      const std::set<std::string>& known) const;

 private:
  std::map<std::string, std::string> options_;  // "" for bare flags
  std::set<std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace peachy
