// Persistent work-stealing task runtime shared by every explicit-task
// execution layer (pap::Runner's work-stealing schedule, the MapReduce
// engine, the ThreadPool compatibility shim).
//
// Design (see DESIGN.md "Task runtime"):
//  * A TaskArena spawns its worker threads ONCE; phases reuse them instead
//    of paying a pool construction/teardown per map or reduce phase.
//  * parallel_for pre-splits [0, n) into contiguous chunks and deals them
//    round-robin into per-lane Chase-Lev-style deques. A lane pops its own
//    deque LIFO; when empty it steals FIFO from the other lanes, so idle
//    lanes drain whichever lane got the expensive tiles.
//  * The calling thread is lane 0 and participates, which makes
//    max_workers == 1 a strictly serial, synchronization-free loop (the
//    determinism baseline the MapReduce tests rely on) and makes nested
//    parallel_for calls legal (they degrade to inline serial execution).
//  * Exceptions thrown by a body are captured once, remaining chunks are
//    skipped, and the first exception is rethrown on the caller.
//  * Per-lane task/steal counters are aggregated by counters() so traces
//    and benchmarks can tell scheduling policies apart.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace peachy {

/// Aggregated runtime activity counters (monotonic since construction or
/// the last reset_counters()).
struct RuntimeCounters {
  std::uint64_t tasks = 0;       ///< chunks executed
  std::uint64_t steals = 0;      ///< chunks taken from another lane's deque
  std::uint64_t dispatches = 0;  ///< parallel_for calls that woke workers
};

inline RuntimeCounters operator-(const RuntimeCounters& a,
                                 const RuntimeCounters& b) {
  return {a.tasks - b.tasks, a.steals - b.steals, a.dispatches - b.dispatches};
}

/// Knobs for one TaskArena::parallel_for call. (Namespace scope so it can
/// be a default argument inside TaskArena — GCC rejects nested aggregates
/// with member initializers there.)
struct ForOptions {
  std::size_t max_workers = 0;  ///< cap on participating lanes; 0 = all
  std::size_t grain = 0;        ///< min indices per chunk; 0 = auto
};

/// A persistent team of worker threads executing chunked parallel loops by
/// work stealing, plus a fire-and-forget injection queue for detached tasks.
class TaskArena {
 public:
  /// Range body: fn(begin, end) over a contiguous index chunk.
  using RangeBody = std::function<void(std::size_t, std::size_t)>;

  using ForOptions = ::peachy::ForOptions;

  /// Spawns `workers` (>= 1) background threads; the caller of parallel_for
  /// always participates as one extra lane.
  explicit TaskArena(std::size_t workers);
  ~TaskArena();

  TaskArena(const TaskArena&) = delete;
  TaskArena& operator=(const TaskArena&) = delete;

  /// The process-wide arena (spawned on first use, sized from
  /// hardware_concurrency, overridable with PEACHY_ARENA_THREADS).
  static TaskArena& shared();

  std::size_t workers() const { return threads_.size(); }
  /// Execution lanes = workers() background threads + the calling thread.
  std::size_t lanes() const { return threads_.size() + 1; }

  /// Lane index (0 = caller) of the loop body currently executing on this
  /// thread, or -1 outside any arena loop. Stable for the whole body call —
  /// usable as a scratch-slot or trace-lane index.
  static int current_lane();

  /// Runs body over [0, n) in chunks and blocks until every chunk finished.
  /// Rethrows the first exception thrown by any chunk (each chunk runs at
  /// most once; chunks after a failure are skipped).
  void parallel_for(std::size_t n, const RangeBody& body, ForOptions opts = {});

  /// Index-at-a-time convenience wrapper over parallel_for.
  void parallel_for_index(std::size_t n,
                          const std::function<void(std::size_t)>& fn,
                          ForOptions opts = {});

  /// Enqueues a detached task executed by some worker lane. The task must
  /// not throw (wrap it — the ThreadPool shim routes exceptions through
  /// std::packaged_task futures).
  void post(std::function<void()> task);

  RuntimeCounters counters() const;
  void reset_counters();

 private:
  // Fixed-array Chase-Lev-style deque. push() only runs during single-
  // threaded job setup (before workers are released), so the buffer itself
  // needs no atomicity — top/bottom arbitrate take vs steal.
  struct alignas(64) Deque {
    std::atomic<std::int64_t> top{0};
    std::atomic<std::int64_t> bottom{0};
    std::vector<std::uint64_t> buffer;

    void reset(std::size_t capacity);
    void push(std::uint64_t chunk);     // setup phase only
    bool take(std::uint64_t* chunk);    // owner, LIFO end
    bool steal(std::uint64_t* chunk);   // thieves, FIFO end
  };

  struct alignas(64) LaneCounters {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> steals{0};
  };

  void worker_loop(std::size_t lane);
  void run_job(std::size_t lane);
  void execute_chunk(std::size_t lane, std::uint64_t chunk);
  void run_serial(std::size_t n, const RangeBody& body, std::size_t chunk_size);

  std::vector<std::thread> threads_;
  std::vector<Deque> deques_;  // one per lane, lane 0 = caller
  std::vector<LaneCounters> lane_counters_;
  std::atomic<std::uint64_t> dispatches_{0};

  // Job release: workers sleep on cv_ until epoch_ advances (or an inject
  // task arrives, or shutdown). The same mutex gates job entry (job_live_,
  // active_) and completion, so a straggler waking after the job finished
  // can never touch deques that the next job is re-dealing.
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  std::size_t job_participants_ = 0;  // lanes allowed into the current job
  const RangeBody* job_body_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_chunk_size_ = 1;
  bool job_live_ = false;
  int active_ = 0;  // worker lanes currently inside run_job
  bool stopping_ = false;
  std::deque<std::function<void()>> inject_;

  // Serializes parallel_for callers (one chunked job in flight at a time).
  std::mutex for_mutex_;

  // Completion latch for the job in flight.
  std::atomic<std::int64_t> chunks_left_{0};

  // First exception thrown by a chunk of the job in flight.
  std::atomic<bool> failed_{false};
  std::mutex error_mutex_;
  std::exception_ptr error_;
};

}  // namespace peachy
