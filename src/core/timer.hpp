// Wall-clock timing helpers for benchmarks and trace recording.
#pragma once

#include <chrono>
#include <cstdint>

namespace peachy {

/// Monotonic nanosecond timestamp (epoch: arbitrary but fixed per process).
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Simple restartable wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(now_ns()) {}

  void reset() { start_ = now_ns(); }
  std::int64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_ms() const { return static_cast<double>(elapsed_ns()) / 1e6; }
  double elapsed_s() const { return static_cast<double>(elapsed_ns()) / 1e9; }

 private:
  std::int64_t start_;
};

}  // namespace peachy
