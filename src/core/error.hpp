// Error-handling helpers shared across all peachy libraries.
//
// Library code validates its preconditions with PEACHY_CHECK / PEACHY_REQUIRE
// and reports violations as exceptions; it never calls abort() so that tests
// can assert on failure paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace peachy {

/// Exception thrown on precondition or invariant violations in peachy code.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace peachy

/// Validate a condition; throws peachy::Error with location info on failure.
#define PEACHY_CHECK(cond)                                                \
  do {                                                                    \
    if (!(cond))                                                          \
      ::peachy::detail::throw_check_failure(#cond, __FILE__, __LINE__, ""); \
  } while (0)

/// Like PEACHY_CHECK but with a streamed message, e.g.
/// PEACHY_REQUIRE(n > 0, "n must be positive, got " << n);
#define PEACHY_REQUIRE(cond, msg_stream)                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream peachy_req_os_;                                   \
      peachy_req_os_ << msg_stream;                                        \
      ::peachy::detail::throw_check_failure(#cond, __FILE__, __LINE__,     \
                                            peachy_req_os_.str());         \
    }                                                                      \
  } while (0)
