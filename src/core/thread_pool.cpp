#include "core/thread_pool.hpp"

#include "core/error.hpp"

namespace peachy {

ThreadPool::ThreadPool(std::size_t threads)
    : arena_(TaskArena::shared()), threads_(threads) {
  PEACHY_REQUIRE(threads >= 1, "thread pool needs >= 1 thread");
}

ThreadPool::~ThreadPool() {
  std::unique_lock lock(mutex_);
  stopping_ = true;
  cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    PEACHY_CHECK(!stopping_);
    ++pending_;
  }
  // The wrapper only touches this pool's bookkeeping; the destructor keeps
  // `this` alive until pending_ drains, so the capture is safe.
  arena_.post([this, task = std::move(task)] {
    task();
    {
      std::lock_guard lock(mutex_);
      --pending_;
    }
    cv_.notify_all();
  });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  arena_.parallel_for_index(n, fn, {.max_workers = threads_});
}

}  // namespace peachy
