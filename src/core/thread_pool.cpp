#include "core/thread_pool.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace peachy {

ThreadPool::ThreadPool(std::size_t threads) {
  PEACHY_REQUIRE(threads >= 1, "thread pool needs >= 1 thread");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    PEACHY_CHECK(!stopping_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, thread_count() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();  // rethrows the first exception, if any
}

}  // namespace peachy
