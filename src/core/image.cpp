#include "core/image.hpp"

#include <algorithm>
#include <fstream>

namespace peachy {

Image::Image(int height, int width, Rgb fill)
    : height_(height), width_(width),
      pixels_(static_cast<std::size_t>(height) * width, fill) {
  PEACHY_REQUIRE(height >= 0 && width >= 0,
                 "image dimensions must be non-negative: " << height << "x"
                                                           << width);
}

void Image::fill_rect(int y0, int x0, int h, int w, Rgb color) {
  const int y1 = std::min(y0 + h, height_);
  const int x1 = std::min(x0 + w, width_);
  for (int y = std::max(y0, 0); y < y1; ++y)
    for (int x = std::max(x0, 0); x < x1; ++x) (*this)(y, x) = color;
}

Image Image::upscaled(int factor) const {
  PEACHY_REQUIRE(factor >= 1, "upscale factor must be >= 1, got " << factor);
  Image out(height_ * factor, width_ * factor);
  for (int y = 0; y < out.height(); ++y)
    for (int x = 0; x < out.width(); ++x)
      out(y, x) = (*this)(y / factor, x / factor);
  return out;
}

void Image::write_ppm(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  PEACHY_REQUIRE(os.good(), "cannot open " << path << " for writing");
  os << "P6\n" << width_ << " " << height_ << "\n255\n";
  os.write(reinterpret_cast<const char*>(pixels_.data()),
           static_cast<std::streamsize>(pixels_.size() * sizeof(Rgb)));
  PEACHY_REQUIRE(os.good(), "write failed for " << path);
}

Image Image::read_ppm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PEACHY_REQUIRE(is.good(), "cannot open " << path << " for reading");
  std::string magic;
  is >> magic;
  PEACHY_REQUIRE(magic == "P6", path << " is not a binary PPM (magic "
                                     << magic << ")");
  int width = 0, height = 0, maxval = 0;
  is >> width >> height >> maxval;
  PEACHY_REQUIRE(maxval == 255, "only maxval 255 supported, got " << maxval);
  is.get();  // single whitespace byte after the header
  Image img(height, width);
  is.read(reinterpret_cast<char*>(img.pixels_.data()),
          static_cast<std::streamsize>(img.pixels_.size() * sizeof(Rgb)));
  PEACHY_REQUIRE(is.gcount() ==
                     static_cast<std::streamsize>(img.pixels_.size() * 3),
                 "truncated PPM payload in " << path);
  return img;
}

}  // namespace peachy
