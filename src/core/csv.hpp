// CSV reading/writing for experiment outputs and the climate data substrate.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace peachy {

/// Streams rows to a CSV file (RFC-4180 quoting for fields containing
/// commas, quotes or newlines).
class CsvWriter {
 public:
  /// Opens `path` for writing; throws peachy::Error on failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row of already-formatted fields.
  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string> fields);

 private:
  struct Impl;
  Impl* impl_;
};

/// Splits one CSV line into fields, honouring RFC-4180 double quotes.
std::vector<std::string> split_csv_line(const std::string& line);

/// Reads a whole CSV file into rows of fields. Skips fully empty lines.
std::vector<std::vector<std::string>> read_csv(const std::string& path);

/// Quotes a single field if needed (commas, quotes, newlines).
std::string csv_escape(const std::string& field);

}  // namespace peachy
