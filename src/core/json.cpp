#include "core/json.hpp"

#include <cmath>
#include <cstdio>

namespace peachy::json {

bool Value::as_bool() const {
  PEACHY_REQUIRE(is_bool(), "JSON value is not a bool");
  return std::get<bool>(data_);
}

double Value::as_number() const {
  PEACHY_REQUIRE(is_number(), "JSON value is not a number");
  return std::get<double>(data_);
}

std::int64_t Value::as_int() const {
  const double d = as_number();
  PEACHY_REQUIRE(std::floor(d) == d && std::abs(d) <= 9.007199254740992e15,
                 "JSON number " << d << " is not an exact integer");
  return static_cast<std::int64_t>(d);
}

const std::string& Value::as_string() const {
  PEACHY_REQUIRE(is_string(), "JSON value is not a string");
  return std::get<std::string>(data_);
}

const Array& Value::as_array() const {
  PEACHY_REQUIRE(is_array(), "JSON value is not an array");
  return std::get<Array>(data_);
}

Array& Value::as_array() {
  PEACHY_REQUIRE(is_array(), "JSON value is not an array");
  return std::get<Array>(data_);
}

const Object& Value::as_object() const {
  PEACHY_REQUIRE(is_object(), "JSON value is not an object");
  return std::get<Object>(data_);
}

Object& Value::as_object() {
  PEACHY_REQUIRE(is_object(), "JSON value is not an object");
  return std::get<Object>(data_);
}

const Value& Value::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  PEACHY_REQUIRE(it != obj.end(), "JSON object has no key \"" << key << "\"");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double d) {
  if (std::floor(d) == d && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

}  // namespace

void Value::dump_to(std::string& out, int depth, bool indent) const {
  const std::string pad = indent ? std::string(2 * (depth + 1), ' ') : "";
  const std::string close_pad = indent ? std::string(2 * depth, ' ') : "";
  const char* nl = indent ? "\n" : "";
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    number_into(out, as_number());
  } else if (is_string()) {
    escape_into(out, as_string());
  } else if (is_array()) {
    const Array& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    out += nl;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      out += pad;
      arr[i].dump_to(out, depth + 1, indent);
      if (i + 1 < arr.size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += ']';
  } else {
    const Object& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    out += nl;
    std::size_t i = 0;
    for (const auto& [key, value] : obj) {
      out += pad;
      escape_into(out, key);
      out += indent ? ": " : ":";
      value.dump_to(out, depth + 1, indent);
      if (++i < obj.size()) out += ',';
      out += nl;
    }
    out += close_pad;
    out += '}';
  }
}

std::string Value::dump(bool indent) const {
  std::string out;
  dump_to(out, 0, indent);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    PEACHY_REQUIRE(pos_ == text_.size(),
                   "trailing characters at offset " << pos_);
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      take();
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      take();
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Encode as UTF-8 (basic multilingual plane only).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') take();
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    PEACHY_REQUIRE(pos_ > start, "empty number");
    try {
      std::size_t used = 0;
      const double d = std::stod(text_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) fail("bad number");
      return Value(d);
    } catch (const Error&) {
      throw;
    } catch (...) {
      fail("bad number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace peachy::json
