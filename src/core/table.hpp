// Aligned plain-text table printer used by every bench binary to emit
// paper-style rows.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace peachy {

/// Collects rows of string cells and prints them as an aligned ASCII table
/// with a header separator — the format all bench_* binaries use to echo
/// the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void row(std::vector<std::string> cells);
  void row(std::initializer_list<std::string> cells);

  std::size_t rows() const { return body_.size(); }

  /// Renders the table; numeric-looking cells are right-aligned.
  void print(std::ostream& os) const;

  /// Formats a double with `prec` fractional digits.
  static std::string num(double v, int prec = 2);
  static std::string num(std::int64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> body_;
};

}  // namespace peachy
