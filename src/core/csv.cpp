#include "core/csv.hpp"

#include <fstream>

#include "core/error.hpp"

namespace peachy {

struct CsvWriter::Impl {
  std::ofstream os;
};

CsvWriter::CsvWriter(const std::string& path) : impl_(new Impl) {
  impl_->os.open(path);
  if (!impl_->os.good()) {
    delete impl_;
    throw Error("cannot open " + path + " for CSV writing");
  }
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) impl_->os << ',';
    impl_->os << csv_escape(fields[i]);
  }
  impl_->os << '\n';
}

void CsvWriter::row(std::initializer_list<std::string> fields) {
  row(std::vector<std::string>(fields));
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream is(path);
  PEACHY_REQUIRE(is.good(), "cannot open " << path << " for CSV reading");
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(split_csv_line(line));
  }
  return rows;
}

}  // namespace peachy
