#include "core/task_runtime.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "core/error.hpp"
#include "core/timer.hpp"
#include "obs/obs.hpp"

namespace peachy {

namespace {

// Lane index of the arena loop body running on this thread; -1 outside.
thread_local int tl_lane = -1;

// Registry handles resolved once; the metrics themselves are lock-free.
obs::Counter& obs_dispatches() {
  static obs::Counter& c = obs::Registry::global().counter("arena.dispatches");
  return c;
}
obs::Counter& obs_chunks() {
  static obs::Counter& c = obs::Registry::global().counter("arena.chunks");
  return c;
}
obs::Counter& obs_steals() {
  static obs::Counter& c = obs::Registry::global().counter("arena.steals");
  return c;
}
obs::Counter& obs_idle_ns() {
  static obs::Counter& c =
      obs::Registry::global().counter("arena.lane_idle_ns");
  return c;
}

std::size_t shared_worker_count() {
  if (const char* env = std::getenv("PEACHY_ARENA_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<std::size_t>(hw - 1) : 1;
}

}  // namespace

// --- Deque ------------------------------------------------------------------

void TaskArena::Deque::reset(std::size_t capacity) {
  if (buffer.size() < capacity) buffer.resize(capacity);
  top.store(0, std::memory_order_relaxed);
  bottom.store(0, std::memory_order_relaxed);
}

void TaskArena::Deque::push(std::uint64_t chunk) {
  const std::int64_t b = bottom.load(std::memory_order_relaxed);
  buffer[static_cast<std::size_t>(b)] = chunk;
  bottom.store(b + 1, std::memory_order_relaxed);
}

bool TaskArena::Deque::take(std::uint64_t* chunk) {
  const std::int64_t b = bottom.load(std::memory_order_relaxed) - 1;
  bottom.store(b, std::memory_order_seq_cst);
  std::int64_t t = top.load(std::memory_order_seq_cst);
  if (t <= b) {
    *chunk = buffer[static_cast<std::size_t>(b)];
    if (t == b) {
      // Last element: arbitrate with thieves through top.
      const bool won =
          top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst);
      bottom.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }
  bottom.store(b + 1, std::memory_order_relaxed);  // was empty; restore
  return false;
}

bool TaskArena::Deque::steal(std::uint64_t* chunk) {
  std::int64_t t = top.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom.load(std::memory_order_seq_cst);
  if (t >= b) return false;
  const std::uint64_t v = buffer[static_cast<std::size_t>(t)];
  if (!top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst))
    return false;  // lost the race; the chunk went to another lane
  *chunk = v;
  return true;
}

// --- TaskArena --------------------------------------------------------------

TaskArena::TaskArena(std::size_t workers)
    : deques_(workers + 1), lane_counters_(workers + 1) {
  PEACHY_REQUIRE(workers >= 1, "task arena needs >= 1 worker thread");
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i + 1); });
}

TaskArena::~TaskArena() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

TaskArena& TaskArena::shared() {
  static TaskArena arena(shared_worker_count());
  return arena;
}

int TaskArena::current_lane() { return tl_lane; }

void TaskArena::execute_chunk(std::size_t lane, std::uint64_t chunk) {
  const std::size_t lo = static_cast<std::size_t>(chunk) * job_chunk_size_;
  const std::size_t hi = std::min(job_n_, lo + job_chunk_size_);
  if (!failed_.load(std::memory_order_relaxed)) {
    try {
      (*job_body_)(lo, hi);
    } catch (...) {
      std::lock_guard lock(error_mutex_);
      if (!error_) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
  }
  lane_counters_[lane].tasks.fetch_add(1, std::memory_order_relaxed);
  if (chunks_left_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard lock(mutex_);
    }
    done_cv_.notify_all();
  }
}

void TaskArena::run_job(std::size_t lane) {
  const int prev_lane = tl_lane;
  tl_lane = static_cast<int>(lane);
  std::uint64_t chunk = 0;
  Deque& own = deques_[lane];
  while (own.take(&chunk)) execute_chunk(lane, chunk);
  // Own deque drained: steal FIFO from the other participants. A failed
  // sweep means every remaining chunk is either executing or guaranteed to
  // be drained by its owner, so exiting early never strands work.
  const std::size_t p = job_participants_;
  bool found = true;
  while (found) {
    found = false;
    for (std::size_t i = 1; i < p; ++i) {
      Deque& victim = deques_[(lane + i) % p];
      while (victim.steal(&chunk)) {
        lane_counters_[lane].steals.fetch_add(1, std::memory_order_relaxed);
        execute_chunk(lane, chunk);
        found = true;
      }
    }
  }
  tl_lane = prev_lane;
}

void TaskArena::worker_loop(std::size_t worker_index) {
  const std::size_t lane = worker_index;  // lane 0 is reserved for callers
  std::uint64_t seen = 0;
  for (;;) {
    std::function<void()> inject;
    bool joined = false;
    {
      std::unique_lock lock(mutex_);
      // Idle accounting: the time a worker sleeps between jobs. Gated and
      // measured around the wait only, so the armed path costs two clock
      // reads per wake-up and the disabled path one relaxed load.
      const std::int64_t idle_from = obs::enabled() ? now_ns() : 0;
      cv_.wait(lock, [&] {
        return stopping_ || epoch_ != seen || !inject_.empty();
      });
      if (idle_from != 0)
        obs_idle_ns().add(static_cast<std::uint64_t>(now_ns() - idle_from));
      if (!inject_.empty()) {
        inject = std::move(inject_.front());
        inject_.pop_front();
      } else if (epoch_ != seen) {
        seen = epoch_;
        if (lane < job_participants_ && job_live_) {
          ++active_;
          joined = true;
        }
      } else if (stopping_) {
        return;  // injection queue drained, no fresh job
      }
    }
    if (inject) {
      inject();
      continue;
    }
    if (joined) {
      run_job(lane);
      {
        std::lock_guard lock(mutex_);
        --active_;
      }
      done_cv_.notify_all();
    }
  }
}

void TaskArena::run_serial(std::size_t n, const RangeBody& body,
                           std::size_t chunk_size) {
  // Inline execution on the calling thread: the max_workers == 1 path and
  // nested parallel_for calls. No synchronization, deterministic order.
  const std::size_t lane = tl_lane >= 0 ? static_cast<std::size_t>(tl_lane) : 0;
  const int prev_lane = tl_lane;
  tl_lane = static_cast<int>(lane);
  std::size_t chunks = 0;
  try {
    for (std::size_t lo = 0; lo < n; lo += chunk_size) {
      body(lo, std::min(n, lo + chunk_size));
      ++chunks;
    }
  } catch (...) {
    tl_lane = prev_lane;
    lane_counters_[lane].tasks.fetch_add(chunks + 1,
                                         std::memory_order_relaxed);
    throw;
  }
  tl_lane = prev_lane;
  lane_counters_[lane].tasks.fetch_add(chunks, std::memory_order_relaxed);
}

void TaskArena::parallel_for(std::size_t n, const RangeBody& body,
                             ForOptions opts) {
  if (n == 0) return;
  PEACHY_CHECK(body != nullptr);
  std::size_t p = opts.max_workers > 0 ? std::min(opts.max_workers, lanes())
                                       : lanes();
  const std::size_t chunk_size =
      opts.grain > 0 ? opts.grain
                     : std::max<std::size_t>(1, (n + p * 8 - 1) / (p * 8));
  const std::size_t chunks = (n + chunk_size - 1) / chunk_size;
  p = std::min(p, chunks);
  if (p <= 1 || tl_lane >= 0) {
    run_serial(n, body, chunk_size);
    return;
  }

  std::lock_guard for_lock(for_mutex_);
  const bool obs_on = obs::enabled();
  std::uint64_t steals_before = 0;
  if (obs_on) {
    for (const LaneCounters& lc : lane_counters_)
      steals_before += lc.steals.load(std::memory_order_relaxed);
    obs::Tracer::global().begin("arena.parallel_for", "arena");
  }
  // Deal chunks round-robin into the first p lane deques (single-threaded:
  // workers are still asleep or finishing an older epoch behind mutex_).
  const std::size_t per_lane = (chunks + p - 1) / p;
  for (std::size_t lane = 0; lane < p; ++lane) deques_[lane].reset(per_lane);
  for (std::size_t c = 0; c < chunks; ++c) deques_[c % p].push(c);

  chunks_left_.store(static_cast<std::int64_t>(chunks),
                     std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard lock(error_mutex_);
    error_ = nullptr;
  }
  {
    std::lock_guard lock(mutex_);
    job_body_ = &body;
    job_n_ = n;
    job_chunk_size_ = chunk_size;
    job_participants_ = p;
    job_live_ = true;
    ++epoch_;
  }
  cv_.notify_all();
  dispatches_.fetch_add(1, std::memory_order_relaxed);

  run_job(0);  // the caller is lane 0 and always participates

  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] {
      return chunks_left_.load(std::memory_order_acquire) == 0 && active_ == 0;
    });
    job_live_ = false;  // stragglers waking later must not touch the deques
    job_body_ = nullptr;
  }
  if (obs_on) {
    std::uint64_t steals_after = 0;
    for (const LaneCounters& lc : lane_counters_)
      steals_after += lc.steals.load(std::memory_order_relaxed);
    obs_dispatches().add(1);
    obs_chunks().add(chunks);
    obs_steals().add(steals_after - steals_before);
    obs::Tracer::global().end({{"n", static_cast<std::int64_t>(n)},
                               {"chunks", static_cast<std::int64_t>(chunks)},
                               {"lanes", static_cast<std::int64_t>(p)},
                               {"steals", static_cast<std::int64_t>(
                                              steals_after - steals_before)}});
  }
  if (failed_.load(std::memory_order_relaxed)) {
    std::lock_guard lock(error_mutex_);
    std::exception_ptr err = error_;
    error_ = nullptr;
    if (err) std::rethrow_exception(err);
  }
}

void TaskArena::parallel_for_index(std::size_t n,
                                   const std::function<void(std::size_t)>& fn,
                                   ForOptions opts) {
  PEACHY_CHECK(fn != nullptr);
  parallel_for(
      n,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      opts);
}

void TaskArena::post(std::function<void()> task) {
  PEACHY_CHECK(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    PEACHY_CHECK(!stopping_);
    inject_.push_back(std::move(task));
  }
  cv_.notify_one();
}

RuntimeCounters TaskArena::counters() const {
  RuntimeCounters total;
  for (const LaneCounters& lc : lane_counters_) {
    total.tasks += lc.tasks.load(std::memory_order_relaxed);
    total.steals += lc.steals.load(std::memory_order_relaxed);
  }
  total.dispatches = dispatches_.load(std::memory_order_relaxed);
  return total;
}

void TaskArena::reset_counters() {
  for (LaneCounters& lc : lane_counters_) {
    lc.tasks.store(0, std::memory_order_relaxed);
    lc.steals.store(0, std::memory_order_relaxed);
  }
  dispatches_.store(0, std::memory_order_relaxed);
}

}  // namespace peachy
