#include "trace/trace.hpp"

#include <algorithm>
#include <limits>
#include <tuple>

#include "core/colormap.hpp"
#include "core/csv.hpp"
#include "core/error.hpp"

namespace peachy {

TraceRecorder::TraceRecorder(int workers) {
  PEACHY_REQUIRE(workers >= 1, "trace needs >= 1 worker lane, got " << workers);
  lanes_.resize(static_cast<std::size_t>(workers));
}

void TraceRecorder::record(const TaskRecord& rec) {
  PEACHY_REQUIRE(rec.worker >= 0 && rec.worker < workers(),
                 "worker " << rec.worker << " outside [0," << workers() << ")");
  lanes_[static_cast<std::size_t>(rec.worker)].push_back(rec);
}

std::vector<TaskRecord> TraceRecorder::merged() const {
  std::vector<TaskRecord> all;
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane.size();
  all.reserve(total);
  for (const auto& lane : lanes_) all.insert(all.end(), lane.begin(), lane.end());
  std::sort(all.begin(), all.end(), [](const TaskRecord& a, const TaskRecord& b) {
    return std::tie(a.iteration, a.start_ns) < std::tie(b.iteration, b.start_ns);
  });
  return all;
}

std::vector<TaskRecord> TraceRecorder::iteration(int iter) const {
  std::vector<TaskRecord> out;
  for (const auto& lane : lanes_)
    for (const auto& rec : lane)
      if (rec.iteration == iter) out.push_back(rec);
  std::sort(out.begin(), out.end(), [](const TaskRecord& a, const TaskRecord& b) {
    return a.start_ns < b.start_ns;
  });
  return out;
}

std::size_t TraceRecorder::total_tasks() const {
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane.size();
  return total;
}

void TraceRecorder::clear() {
  for (auto& lane : lanes_) lane.clear();
}

std::vector<obs::TraceEvent> to_trace_events(
    const std::vector<TaskRecord>& records) {
  std::vector<obs::TraceEvent> events;
  events.reserve(records.size());
  for (const TaskRecord& r : records) {
    obs::TraceEvent ev;
    ev.name = "tile";
    ev.cat = "pap";
    ev.ph = obs::TraceEvent::Phase::kComplete;
    ev.ts_ns = r.start_ns;
    ev.dur_ns = r.duration_ns();
    ev.tid = r.worker;
    ev.args = {{"iter", r.iteration},
               {"y0", r.y0},
               {"x0", r.x0},
               {"h", r.h},
               {"w", r.w}};
    events.push_back(std::move(ev));
  }
  return events;
}

void TraceRecorder::write_chrome_json(const std::string& path) const {
  obs::write_chrome_trace(path, to_trace_events(merged()));
}

void TraceRecorder::write_csv(const std::string& path) const {
  CsvWriter csv(path);
  csv.row({"iteration", "worker", "y0", "x0", "h", "w", "start_ns", "end_ns"});
  for (const TaskRecord& r : merged())
    csv.row({std::to_string(r.iteration), std::to_string(r.worker),
             std::to_string(r.y0), std::to_string(r.x0), std::to_string(r.h),
             std::to_string(r.w), std::to_string(r.start_ns),
             std::to_string(r.end_ns)});
}

IterationSummary summarize_iteration(const std::vector<TaskRecord>& records,
                                     int iter, int workers) {
  PEACHY_REQUIRE(workers >= 1, "summary needs >= 1 worker");
  IterationSummary s;
  s.iteration = iter;
  s.per_worker_busy_ns.assign(static_cast<std::size_t>(workers), 0);
  std::int64_t min_start = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_end = std::numeric_limits<std::int64_t>::min();
  for (const TaskRecord& r : records) {
    if (r.iteration != iter) continue;
    ++s.tasks;
    s.busy_ns += r.duration_ns();
    if (r.worker >= 0 && r.worker < workers)
      s.per_worker_busy_ns[static_cast<std::size_t>(r.worker)] +=
          r.duration_ns();
    min_start = std::min(min_start, r.start_ns);
    max_end = std::max(max_end, r.end_ns);
  }
  s.span_ns = s.tasks ? max_end - min_start : 0;
  if (s.tasks) {
    std::vector<double> loads;
    loads.reserve(s.per_worker_busy_ns.size());
    for (auto b : s.per_worker_busy_ns)
      loads.push_back(static_cast<double>(b));
    double sum = 0.0, mx = 0.0;
    for (double v : loads) {
      sum += v;
      mx = std::max(mx, v);
    }
    const double mean = sum / static_cast<double>(loads.size());
    s.imbalance = mean > 0.0 ? mx / mean : 1.0;
  }
  return s;
}

Image render_timeline(const std::vector<TaskRecord>& records, int workers,
                      int width, int lane_height) {
  PEACHY_REQUIRE(workers >= 1 && width >= 2 && lane_height >= 2,
                 "bad timeline geometry");
  Image img(workers * (lane_height + 1) - 1, width, Rgb{0, 0, 0});
  if (records.empty()) return img;

  std::int64_t t0 = records.front().start_ns, t1 = records.front().end_ns;
  for (const TaskRecord& r : records) {
    t0 = std::min(t0, r.start_ns);
    t1 = std::max(t1, r.end_ns);
  }
  const double span = std::max<std::int64_t>(1, t1 - t0);

  for (const TaskRecord& r : records) {
    if (r.worker < 0 || r.worker >= workers) continue;
    const int x0 = static_cast<int>((r.start_ns - t0) / span * (width - 1));
    int x1 = static_cast<int>((r.end_ns - t0) / span * (width - 1)) + 1;
    x1 = std::max(x1, x0 + 1);  // at least one pixel per task
    // Color keyed to the tile's position so neighbouring tasks are
    // distinguishable within a lane (as EASYPAP colors tasks by tile).
    const Rgb color = distinct_color((r.y0 * 31 + r.x0) / std::max(1, r.w));
    img.fill_rect(r.worker * (lane_height + 1), x0, lane_height, x1 - x0,
                  color);
  }
  return img;
}

Image render_owner_map(const std::vector<TaskRecord>& records, int grid_h,
                       int grid_w, int cells_per_px) {
  PEACHY_REQUIRE(cells_per_px >= 1, "cells_per_px must be >= 1");
  Image img((grid_h + cells_per_px - 1) / cells_per_px,
            (grid_w + cells_per_px - 1) / cells_per_px, Rgb{0, 0, 0});
  for (const TaskRecord& r : records)
    img.fill_rect(r.y0 / cells_per_px, r.x0 / cells_per_px,
                  std::max(1, r.h / cells_per_px),
                  std::max(1, r.w / cells_per_px), distinct_color(r.worker));
  return img;
}

}  // namespace peachy
