// EASYPAP-style execution tracing.
//
// EASYPAP's trace explorer displays, for each iteration, the tiles (tasks)
// each worker executed and for how long (paper Fig. 3) and which device owns
// each tile (Fig. 4). This module records the same information headlessly:
// per-task records with worker id, tile rectangle and timestamps, plus
// analysis (task counts, per-worker busy time, load imbalance) and exports
// (CSV, tile-owner maps rendered to Image).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/image.hpp"
#include "obs/obs.hpp"

namespace peachy {

/// One executed task (a tile computed by one worker during one iteration).
struct TaskRecord {
  int iteration = 0;
  int worker = 0;       ///< executing worker (CPU lane or device lane)
  int y0 = 0, x0 = 0;   ///< tile origin in grid coordinates
  int h = 0, w = 0;     ///< tile extent
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;

  std::int64_t duration_ns() const { return end_ns - start_ns; }
};

/// Records task executions from concurrent workers without contention:
/// each worker appends to its own buffer; merge happens at query time.
class TraceRecorder {
 public:
  /// `workers` is the number of distinct worker lanes that may record.
  explicit TraceRecorder(int workers);

  int workers() const { return static_cast<int>(lanes_.size()); }

  /// Appends a record to `rec.worker`'s lane. Thread-safe across distinct
  /// workers; a single worker must record sequentially.
  void record(const TaskRecord& rec);

  /// All records, merged and sorted by (iteration, start_ns).
  std::vector<TaskRecord> merged() const;

  /// Records for one iteration only.
  std::vector<TaskRecord> iteration(int iter) const;

  std::size_t total_tasks() const;

  void clear();

  /// Writes all records as CSV: iteration,worker,y0,x0,h,w,start_ns,end_ns.
  void write_csv(const std::string& path) const;

  /// Writes all records as Chrome trace-event JSON (see to_trace_events),
  /// loadable in Perfetto / chrome://tracing.
  void write_chrome_json(const std::string& path) const;

 private:
  std::vector<std::vector<TaskRecord>> lanes_;
};

/// Converts task records into Chrome trace events: one complete ("X") span
/// per task named "tile", tid = worker lane, args = iteration and tile
/// rectangle. Feed the result to obs::chrome_trace_json / write_chrome_trace
/// (optionally merged with an obs::Tracer snapshot).
std::vector<obs::TraceEvent> to_trace_events(
    const std::vector<TaskRecord>& records);

/// Summary of one iteration of a trace (the numbers behind Fig. 3).
struct IterationSummary {
  int iteration = 0;
  std::size_t tasks = 0;
  std::int64_t busy_ns = 0;       ///< sum of task durations
  std::int64_t span_ns = 0;       ///< max end - min start (critical window)
  double imbalance = 1.0;         ///< max worker busy / mean worker busy
  std::vector<std::int64_t> per_worker_busy_ns;
};

/// Computes the per-iteration summary over `records` (all from `iter`).
IterationSummary summarize_iteration(const std::vector<TaskRecord>& records,
                                     int iter, int workers);

/// Renders a tile-ownership map à la Fig. 4: each task's rectangle is
/// painted in its worker's qualitative color (scaled down by `cell_per_px`
/// grid cells per pixel); untouched area stays black ("stable tiles").
Image render_owner_map(const std::vector<TaskRecord>& records, int grid_h,
                       int grid_w, int cells_per_px = 1);

/// Renders a Gantt-style timeline à la Fig. 3's trace display: one
/// horizontal lane per worker (lane_height px each, 1 px gap), time on the
/// x-axis scaled to `width` px, each task drawn as a block in a color
/// derived from its tile position. Idle time stays black. Records may span
/// several iterations; the x-axis covers [min start, max end].
Image render_timeline(const std::vector<TaskRecord>& records, int workers,
                      int width = 1024, int lane_height = 24);

}  // namespace peachy
