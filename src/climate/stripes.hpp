// Warming-stripes rendering (paper Fig. 6).
//
// One vertical stripe per year, colored by the annual mean temperature on a
// diverging blue/red scale. The paper specifies the colorbar range
// explicitly: overall mean of the whole span ± 1.5 °C. Incomplete years can
// be rendered grey (the §III.A.3 validation lesson made visible) or with
// their biased value — both modes are supported so the lesson can be shown.
#pragma once

#include "climate/dwd.hpp"
#include "core/colormap.hpp"
#include "core/image.hpp"

namespace peachy::climate {

/// Rendering parameters for Fig. 6.
struct StripesSpec {
  int stripe_width = 4;   ///< pixels per year
  int height = 120;       ///< image height in pixels
  double half_range_c = 1.5;  ///< colorbar = overall mean ± this (the paper's rule)
  bool grey_incomplete = true; ///< render incomplete years grey
};

/// The paper's colorbar: overall mean of complete years ± half_range_c.
DivergingScale stripes_scale(const AnnualSeries& series,
                             double half_range_c = 1.5);

/// Renders the warming stripes for `series`.
Image render_stripes(const AnnualSeries& series, const StripesSpec& spec = {});

}  // namespace peachy::climate
