#include "climate/stripes.hpp"

#include "core/error.hpp"

namespace peachy::climate {

DivergingScale stripes_scale(const AnnualSeries& series, double half_range_c) {
  PEACHY_REQUIRE(half_range_c > 0, "half range must be positive");
  const double mid = series.overall_mean();
  return DivergingScale(mid - half_range_c, mid + half_range_c);
}

Image render_stripes(const AnnualSeries& series, const StripesSpec& spec) {
  PEACHY_REQUIRE(!series.mean_c.empty(), "cannot render an empty series");
  PEACHY_REQUIRE(spec.stripe_width >= 1 && spec.height >= 1,
                 "bad stripes geometry");
  const DivergingScale scale = stripes_scale(series, spec.half_range_c);
  const int years = static_cast<int>(series.mean_c.size());
  Image img(spec.height, years * spec.stripe_width);
  for (int i = 0; i < years; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    Rgb color;
    if (!series.has_any[idx] || (spec.grey_incomplete && !series.complete[idx]))
      color = DivergingScale::missing();
    else
      color = scale(series.mean_c[idx]);
    img.fill_rect(0, i * spec.stripe_width, spec.height, spec.stripe_width,
                  color);
  }
  return img;
}

}  // namespace peachy::climate
