#include "climate/pipeline.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "core/csv.hpp"
#include "core/error.hpp"

namespace peachy::climate {

namespace {

/// Intermediate value: a partial mean as (sum, count).
struct MeanAcc {
  double sum = 0.0;
  std::int64_t count = 0;
};

thread_local mr::JobCounters g_last_counters;
thread_local DmrPipelineStats g_last_dmr_stats;

bool parse_int(const std::string& s, int* out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  try {
    std::size_t used = 0;
    *out = std::stod(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

// The three phases of the annual-means job, shared by the in-process and
// the distributed pipeline — one definition is what keeps their floating-
// point accumulation, and therefore their output, bit-identical.

void annual_mapper(const int&, const std::string& line,
                   mr::Emitter<int, MeanAcc>& out) {
  const auto fields = split_csv_line(line);
  int year = 0;
  if (fields.empty() || !parse_int(fields[0], &year)) return;  // header
  MeanAcc acc;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    double t = 0.0;
    if (!parse_double(fields[i], &t)) continue;  // missing cell
    acc.sum += t;
    ++acc.count;
  }
  if (acc.count > 0) out.emit(year, acc);
}

void annual_sum(const int& year, const std::vector<MeanAcc>& values,
                mr::Emitter<int, MeanAcc>& out) {
  MeanAcc total;
  for (const MeanAcc& v : values) {
    total.sum += v.sum;
    total.count += v.count;
  }
  out.emit(year, total);
}

/// Folds reducer output (year, {sum, count}) into the AnnualSeries shape.
AnnualSeries to_series(const MonthlyDataset& data,
                       const std::vector<std::pair<int, MeanAcc>>& results) {
  AnnualSeries series;
  series.first_year = data.first_year();
  const auto years = static_cast<std::size_t>(data.num_years());
  series.mean_c.assign(years, 0.0);
  series.complete.assign(years, false);
  series.has_any.assign(years, false);
  for (const auto& [year, acc] : results) {
    PEACHY_REQUIRE(year >= data.first_year() && year <= data.last_year(),
                   "reducer produced out-of-range year " << year);
    const auto i = static_cast<std::size_t>(year - data.first_year());
    series.mean_c[i] = acc.sum / static_cast<double>(acc.count);
    series.has_any[i] = acc.count > 0;
    series.complete[i] = acc.count == 12 * kNumStates;
  }
  return series;
}

/// Input records: (line number, line) over all month-major lines.
std::vector<std::pair<int, std::string>> numbered_lines(
    const MonthlyDataset& data) {
  const std::vector<std::string> lines = month_major_all_lines(data);
  std::vector<std::pair<int, std::string>> inputs;
  inputs.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i)
    inputs.emplace_back(static_cast<int>(i), lines[i]);
  return inputs;
}

}  // namespace

std::vector<std::string> month_major_all_lines(const MonthlyDataset& data) {
  std::vector<std::string> lines;
  for (int m = 1; m <= 12; ++m)
    for (auto& line : month_major_lines(data, m)) lines.push_back(std::move(line));
  return lines;
}

AnnualSeries annual_means_mapreduce(const MonthlyDataset& data,
                                    const PipelineConfig& config) {
  mr::Job<int, std::string, int, MeanAcc, int, MeanAcc> job;
  job.mapper(annual_mapper)
      .reducer(annual_sum)
      .config(mr::JobConfig{config.map_workers, config.reduce_workers,
                            config.map_tasks, config.partitions});
  if (config.use_combiner) job.combiner(annual_sum);

  const auto results = job.run(numbered_lines(data));
  g_last_counters = job.counters();
  return to_series(data, results);
}

AnnualSeries annual_means_dmr(const MonthlyDataset& data,
                              const DmrPipelineConfig& config) {
  dmr::Job<int, std::string, int, MeanAcc, int, MeanAcc> job;
  job.mapper(annual_mapper).reducer(annual_sum).options(config.options);
  if (config.use_combiner) job.combiner(annual_sum);

  const auto result = job.run(numbered_lines(data));
  g_last_dmr_stats =
      DmrPipelineStats{result.counters, result.comm, result.restarts};
  return to_series(data, result.output);
}

AnnualSeries annual_means_streaming(const std::vector<std::string>& lines,
                                    int first_year, int last_year,
                                    const mr::streaming::StreamingConfig&
                                        config) {
  using namespace mr::streaming;

  // Format-invariant pre-processing mapper: normalize any supported layout
  // to "year<TAB>temperature" records.
  const LineMapper mapper = [](const std::string& line, const LineEmit& emit) {
    const auto fields = split_csv_line(line);
    if (fields.empty()) return;
    int maybe_year = 0;
    if (parse_int(fields[0], &maybe_year)) {
      // Month-major row: year followed by one temperature per state.
      for (std::size_t i = 1; i < fields.size(); ++i) {
        double t = 0.0;
        if (parse_double(fields[i], &t))
          emit(std::to_string(maybe_year) + "\t" + fields[i]);
      }
      return;
    }
    // Long-format row: state,year,month,temp. Anything else (headers,
    // comments) is dropped by the pre-processing stage.
    if (fields.size() == 4) {
      int year = 0, month = 0;
      double t = 0.0;
      if (parse_int(fields[1], &year) && parse_int(fields[2], &month) &&
          parse_double(fields[3], &t))
        emit(std::to_string(year) + "\t" + fields[3]);
    }
  };

  // Streaming reducer: average per key over the sorted partition, tracking
  // key boundaries by hand (the Hadoop-streaming discipline).
  const StreamReducer reducer = [](const std::vector<std::string>& sorted,
                                   const LineEmit& emit) {
    std::string current_key;
    double sum = 0.0;
    std::int64_t count = 0;
    auto flush = [&] {
      if (count > 0) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.15g", sum / static_cast<double>(count));
        emit(current_key + "\t" + buf + "\t" + std::to_string(count));
      }
    };
    for (const std::string& line : sorted) {
      const auto [key, value] = split_kv(line);
      if (key != current_key) {
        flush();
        current_key = key;
        sum = 0.0;
        count = 0;
      }
      double t = 0.0;
      PEACHY_REQUIRE(parse_double(value, &t), "bad shuffled value " << value);
      sum += t;
      ++count;
    }
    flush();
  };

  const auto output = run_streaming(lines, mapper, reducer, config);

  AnnualSeries series;
  series.first_year = first_year;
  const auto years = static_cast<std::size_t>(last_year - first_year + 1);
  series.mean_c.assign(years, 0.0);
  series.complete.assign(years, false);
  series.has_any.assign(years, false);
  for (const std::string& line : output) {
    const auto [key, rest] = split_kv(line);
    const auto [mean_str, count_str] = split_kv(rest);
    int year = 0;
    PEACHY_REQUIRE(parse_int(key, &year), "bad reducer key " << key);
    PEACHY_REQUIRE(year >= first_year && year <= last_year,
                   "year " << year << " outside [" << first_year << ","
                           << last_year << "]");
    const auto i = static_cast<std::size_t>(year - first_year);
    double mean = 0.0;
    int count = 0;
    PEACHY_REQUIRE(parse_double(mean_str, &mean), "bad mean " << mean_str);
    PEACHY_REQUIRE(parse_int(count_str, &count), "bad count " << count_str);
    series.mean_c[i] = mean;
    series.has_any[i] = count > 0;
    series.complete[i] = count == 12 * kNumStates;
  }
  return series;
}

const mr::JobCounters& last_pipeline_counters() { return g_last_counters; }

const DmrPipelineStats& last_dmr_stats() { return g_last_dmr_stats; }

}  // namespace peachy::climate
