// Advanced MapReduce analytics on the climate substrate — the "later
// programming assignments for the course (not detailed in this
// manuscript)" that §III.A.4 alludes to, built on the same engine:
//
//  * per-state annual means (composite keys: one reducer group per
//    (state, year)) and the per-state warming-stripes sheet;
//  * warming trend per state: least-squares slope of annual mean vs year,
//    computed inside MapReduce by accumulating the sufficient statistics
//    (n, Σx, Σy, Σxy, Σx²) — the classic "regression as a reduction"
//    pattern;
//  * top-K warmest years via job chaining: job 1 computes annual means,
//    job 2 re-keys onto a single reducer that keeps the K largest.
#pragma once

#include <string>
#include <vector>

#include "climate/dwd.hpp"
#include "core/image.hpp"

namespace peachy::climate {

/// Per-state annual mean series.
struct StateAnnualSeries {
  int first_year = 0;
  /// mean_c[state][year-index]; NaN-free: query has[][] first.
  std::vector<std::vector<double>> mean_c;
  std::vector<std::vector<bool>> has;
};

/// Computes per-state annual means with one MapReduce job over composite
/// (state, year) keys. Must match the per-state sequential reference.
StateAnnualSeries state_annual_means_mapreduce(const MonthlyDataset& data,
                                               int map_workers = 2,
                                               int reduce_workers = 2);

/// Sequential reference for state_annual_means_mapreduce.
StateAnnualSeries state_annual_means_reference(const MonthlyDataset& data);

/// Warming trend of one state.
struct StateTrend {
  int state = 0;
  double slope_c_per_decade = 0;  ///< least-squares slope of annual mean
  double mean_c = 0;              ///< mean annual temperature
  int years = 0;                  ///< complete years used
};

/// Per-state warming trends via regression-in-MapReduce (sufficient
/// statistics accumulated by the combiner/reducer). Sorted by state index.
std::vector<StateTrend> state_trends_mapreduce(const MonthlyDataset& data,
                                               int map_workers = 2,
                                               int reduce_workers = 2);

/// One (year, mean) result of the top-K job.
struct YearMean {
  int year = 0;
  double mean_c = 0;
};

/// The K warmest years (descending mean) via two chained MapReduce jobs.
/// Only complete years participate.
std::vector<YearMean> warmest_years_mapreduce(const MonthlyDataset& data,
                                              int k, int map_workers = 2);

/// Renders a per-state stripes sheet: one row band per state (in
/// state_names() order), one column per year, each band colored on its own
/// state's mean ± half_range_c scale (as showyourstripes.info does per
/// region). Missing years are grey.
Image render_state_stripes(const StateAnnualSeries& series,
                           int band_height = 24, int stripe_width = 4,
                           double half_range_c = 1.5);

}  // namespace peachy::climate
