#include "climate/analytics.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "core/colormap.hpp"
#include "core/error.hpp"
#include "mapreduce/job.hpp"

namespace peachy::climate {

namespace {

struct MeanAcc {
  double sum = 0;
  std::int64_t count = 0;
};

// Composite key (state, year) with the ordering the engine's group-by
// needs.
struct StateYear {
  int state = 0;
  int year = 0;
  friend bool operator<(const StateYear& a, const StateYear& b) {
    return std::tie(a.state, a.year) < std::tie(b.state, b.year);
  }
};

// Sufficient statistics for a simple linear regression y ~ a + b*x.
struct RegAcc {
  double n = 0, sx = 0, sy = 0, sxy = 0, sxx = 0;
  void add(double x, double y) {
    n += 1;
    sx += x;
    sy += y;
    sxy += x * y;
    sxx += x * x;
  }
  void merge(const RegAcc& o) {
    n += o.n;
    sx += o.sx;
    sy += o.sy;
    sxy += o.sxy;
    sxx += o.sxx;
  }
  double slope() const {
    const double denom = n * sxx - sx * sx;
    PEACHY_REQUIRE(denom != 0, "degenerate regression (need >= 2 x values)");
    return (n * sxy - sx * sy) / denom;
  }
  double mean_y() const {
    PEACHY_REQUIRE(n > 0, "empty regression");
    return sy / n;
  }
};

}  // namespace

StateAnnualSeries state_annual_means_reference(const MonthlyDataset& data) {
  StateAnnualSeries out;
  out.first_year = data.first_year();
  const auto years = static_cast<std::size_t>(data.num_years());
  out.mean_c.assign(kNumStates, std::vector<double>(years, 0.0));
  out.has.assign(kNumStates, std::vector<bool>(years, false));
  for (int s = 0; s < kNumStates; ++s)
    for (int y = data.first_year(); y <= data.last_year(); ++y) {
      double sum = 0;
      int n = 0;
      for (int m = 1; m <= 12; ++m)
        if (data.has(y, m, s)) {
          sum += data.get(y, m, s);
          ++n;
        }
      const auto yi = static_cast<std::size_t>(y - data.first_year());
      if (n > 0) {
        out.mean_c[static_cast<std::size_t>(s)][yi] = sum / n;
        out.has[static_cast<std::size_t>(s)][yi] = true;
      }
    }
  return out;
}

StateAnnualSeries state_annual_means_mapreduce(const MonthlyDataset& data,
                                               int map_workers,
                                               int reduce_workers) {
  const auto observations = data.observations();
  std::vector<std::pair<int, Observation>> inputs;
  inputs.reserve(observations.size());
  for (std::size_t i = 0; i < observations.size(); ++i)
    inputs.emplace_back(static_cast<int>(i), observations[i]);

  mr::Job<int, Observation, StateYear, MeanAcc, StateYear, MeanAcc> job;
  job.mapper([](const int&, const Observation& o,
                mr::Emitter<StateYear, MeanAcc>& out) {
       out.emit(StateYear{o.state, o.year}, MeanAcc{o.temp_c, 1});
     })
      .combiner([](const StateYear& k, const std::vector<MeanAcc>& vs,
                   mr::Emitter<StateYear, MeanAcc>& out) {
        MeanAcc t;
        for (const MeanAcc& v : vs) {
          t.sum += v.sum;
          t.count += v.count;
        }
        out.emit(k, t);
      })
      .reducer([](const StateYear& k, const std::vector<MeanAcc>& vs,
                  mr::Emitter<StateYear, MeanAcc>& out) {
        MeanAcc t;
        for (const MeanAcc& v : vs) {
          t.sum += v.sum;
          t.count += v.count;
        }
        out.emit(k, t);
      })
      .partitioner([](const StateYear& k, int parts) { return k.state % parts; })
      .config(mr::JobConfig{map_workers, reduce_workers, 0, 0});

  StateAnnualSeries out;
  out.first_year = data.first_year();
  const auto years = static_cast<std::size_t>(data.num_years());
  out.mean_c.assign(kNumStates, std::vector<double>(years, 0.0));
  out.has.assign(kNumStates, std::vector<bool>(years, false));
  for (const auto& [key, acc] : job.run(inputs)) {
    PEACHY_REQUIRE(key.year >= data.first_year() && key.year <= data.last_year(),
                   "bad year " << key.year);
    const auto yi = static_cast<std::size_t>(key.year - data.first_year());
    out.mean_c[static_cast<std::size_t>(key.state)][yi] =
        acc.sum / static_cast<double>(acc.count);
    out.has[static_cast<std::size_t>(key.state)][yi] = true;
  }
  return out;
}

std::vector<StateTrend> state_trends_mapreduce(const MonthlyDataset& data,
                                               int map_workers,
                                               int reduce_workers) {
  // Job 1: per-(state, year) means — reuse the composite-key job.
  const StateAnnualSeries annual =
      state_annual_means_mapreduce(data, map_workers, reduce_workers);

  // Job 2: regression per state over (year, annual mean) points.
  std::vector<std::pair<int, std::pair<int, double>>> inputs;  // (state,(x,y))
  for (int s = 0; s < kNumStates; ++s)
    for (std::size_t yi = 0; yi < annual.mean_c[static_cast<std::size_t>(s)].size();
         ++yi)
      if (annual.has[static_cast<std::size_t>(s)][yi])
        inputs.emplace_back(
            s, std::pair{annual.first_year + static_cast<int>(yi),
                         annual.mean_c[static_cast<std::size_t>(s)][yi]});

  mr::Job<int, std::pair<int, double>, int, RegAcc, int, RegAcc> job;
  job.mapper([](const int& state, const std::pair<int, double>& xy,
                mr::Emitter<int, RegAcc>& out) {
       RegAcc acc;
       acc.add(static_cast<double>(xy.first), xy.second);
       out.emit(state, acc);
     })
      .combiner([](const int& state, const std::vector<RegAcc>& vs,
                   mr::Emitter<int, RegAcc>& out) {
        RegAcc t;
        for (const RegAcc& v : vs) t.merge(v);
        out.emit(state, t);
      })
      .reducer([](const int& state, const std::vector<RegAcc>& vs,
                  mr::Emitter<int, RegAcc>& out) {
        RegAcc t;
        for (const RegAcc& v : vs) t.merge(v);
        out.emit(state, t);
      })
      .config(mr::JobConfig{map_workers, reduce_workers, 0, 0});

  std::vector<StateTrend> trends;
  for (const auto& [state, acc] : job.run(inputs)) {
    StateTrend t;
    t.state = state;
    t.slope_c_per_decade = acc.slope() * 10.0;
    t.mean_c = acc.mean_y();
    t.years = static_cast<int>(acc.n);
    trends.push_back(t);
  }
  std::sort(trends.begin(), trends.end(),
            [](const StateTrend& a, const StateTrend& b) {
              return a.state < b.state;
            });
  return trends;
}

std::vector<YearMean> warmest_years_mapreduce(const MonthlyDataset& data,
                                              int k, int map_workers) {
  PEACHY_REQUIRE(k >= 1, "k must be >= 1, got " << k);
  // Job 1: annual Germany means keyed by year, carrying counts so
  // completeness can be checked.
  const auto observations = data.observations();
  std::vector<std::pair<int, Observation>> inputs;
  inputs.reserve(observations.size());
  for (std::size_t i = 0; i < observations.size(); ++i)
    inputs.emplace_back(static_cast<int>(i), observations[i]);

  mr::Job<int, Observation, int, MeanAcc, int, MeanAcc> job1;
  job1.mapper([](const int&, const Observation& o,
                 mr::Emitter<int, MeanAcc>& out) {
        out.emit(o.year, MeanAcc{o.temp_c, 1});
      })
      .combiner([](const int& y, const std::vector<MeanAcc>& vs,
                   mr::Emitter<int, MeanAcc>& out) {
        MeanAcc t;
        for (const MeanAcc& v : vs) {
          t.sum += v.sum;
          t.count += v.count;
        }
        out.emit(y, t);
      })
      .reducer([](const int& y, const std::vector<MeanAcc>& vs,
                  mr::Emitter<int, MeanAcc>& out) {
        MeanAcc t;
        for (const MeanAcc& v : vs) {
          t.sum += v.sum;
          t.count += v.count;
        }
        out.emit(y, t);
      })
      .config(mr::JobConfig{map_workers, 2, 0, 0});
  const auto annual = job1.run(inputs);

  // Job 2 (chained): re-key every complete year onto one key; a single
  // reducer group keeps the K warmest — the canonical top-K pattern.
  std::vector<std::pair<int, YearMean>> stage2;
  for (const auto& [year, acc] : annual)
    if (acc.count == 12 * kNumStates)
      stage2.emplace_back(0, YearMean{year, acc.sum /
                                                static_cast<double>(acc.count)});

  mr::Job<int, YearMean, int, YearMean, int, YearMean> job2;
  job2.mapper([](const int&, const YearMean& ym,
                 mr::Emitter<int, YearMean>& out) { out.emit(0, ym); })
      .reducer([k](const int&, const std::vector<YearMean>& vs,
                   mr::Emitter<int, YearMean>& out) {
        std::vector<YearMean> sorted = vs;
        std::sort(sorted.begin(), sorted.end(),
                  [](const YearMean& a, const YearMean& b) {
                    if (a.mean_c != b.mean_c) return a.mean_c > b.mean_c;
                    return a.year < b.year;
                  });
        for (std::size_t i = 0;
             i < std::min(sorted.size(), static_cast<std::size_t>(k)); ++i)
          out.emit(0, sorted[i]);
      })
      .config(mr::JobConfig{map_workers, 1, 0, 1});

  std::vector<YearMean> result;
  for (auto& [key, ym] : job2.run(stage2)) result.push_back(ym);
  return result;
}

Image render_state_stripes(const StateAnnualSeries& series, int band_height,
                           int stripe_width, double half_range_c) {
  PEACHY_REQUIRE(band_height >= 1 && stripe_width >= 1 && half_range_c > 0,
                 "bad state-stripes geometry");
  PEACHY_REQUIRE(!series.mean_c.empty() && !series.mean_c[0].empty(),
                 "empty series");
  const int years = static_cast<int>(series.mean_c[0].size());
  Image img(kNumStates * band_height, years * stripe_width);
  for (int s = 0; s < kNumStates; ++s) {
    const auto& means = series.mean_c[static_cast<std::size_t>(s)];
    const auto& has = series.has[static_cast<std::size_t>(s)];
    // Per-state scale: this state's own mean +/- half range.
    double sum = 0;
    int n = 0;
    for (int y = 0; y < years; ++y)
      if (has[static_cast<std::size_t>(y)]) {
        sum += means[static_cast<std::size_t>(y)];
        ++n;
      }
    PEACHY_REQUIRE(n > 0, "state " << s << " has no data");
    const DivergingScale scale(sum / n - half_range_c, sum / n + half_range_c);
    for (int y = 0; y < years; ++y) {
      const Rgb color = has[static_cast<std::size_t>(y)]
                            ? scale(means[static_cast<std::size_t>(y)])
                            : DivergingScale::missing();
      img.fill_rect(s * band_height, y * stripe_width, band_height,
                    stripe_width, color);
    }
  }
  return img;
}

}  // namespace peachy::climate
