#include "climate/dwd.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/csv.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"

namespace peachy::climate {

const std::array<std::string, kNumStates>& state_names() {
  static const std::array<std::string, kNumStates> kNames = {
      "Baden-Wuerttemberg", "Bayern",
      "Berlin",             "Brandenburg",
      "Bremen",             "Hamburg",
      "Hessen",             "Mecklenburg-Vorpommern",
      "Niedersachsen",      "Nordrhein-Westfalen",
      "Rheinland-Pfalz",    "Saarland",
      "Sachsen",            "Sachsen-Anhalt",
      "Schleswig-Holstein", "Thueringen",
  };
  return kNames;
}

MonthlyDataset::MonthlyDataset(int first_year, int last_year)
    : first_year_(first_year), last_year_(last_year) {
  PEACHY_REQUIRE(first_year <= last_year, "bad year range [" << first_year
                                                             << "," << last_year
                                                             << "]");
  const std::size_t cells =
      static_cast<std::size_t>(num_years()) * 12 * kNumStates;
  values_.assign(cells, 0.0);
  present_.assign(cells, 0);
}

std::size_t MonthlyDataset::index(int year, int month, int state) const {
  PEACHY_REQUIRE(year >= first_year_ && year <= last_year_,
                 "year " << year << " out of [" << first_year_ << ","
                         << last_year_ << "]");
  PEACHY_REQUIRE(month >= 1 && month <= 12, "month " << month << " out of 1..12");
  PEACHY_REQUIRE(state >= 0 && state < kNumStates, "bad state " << state);
  return (static_cast<std::size_t>(year - first_year_) * 12 +
          static_cast<std::size_t>(month - 1)) *
             kNumStates +
         static_cast<std::size_t>(state);
}

void MonthlyDataset::set(int year, int month, int state, double temp_c) {
  const std::size_t i = index(year, month, state);
  if (!present_[i]) ++present_count_;
  values_[i] = temp_c;
  present_[i] = 1;
}

void MonthlyDataset::clear(int year, int month, int state) {
  const std::size_t i = index(year, month, state);
  if (present_[i]) --present_count_;
  present_[i] = 0;
  values_[i] = 0.0;
}

bool MonthlyDataset::has(int year, int month, int state) const {
  return present_[index(year, month, state)] != 0;
}

double MonthlyDataset::get(int year, int month, int state) const {
  const std::size_t i = index(year, month, state);
  PEACHY_REQUIRE(present_[i], "missing observation: year " << year << " month "
                                                           << month << " state "
                                                           << state);
  return values_[i];
}

std::vector<Observation> MonthlyDataset::observations() const {
  std::vector<Observation> out;
  out.reserve(present_count_);
  for (int y = first_year_; y <= last_year_; ++y)
    for (int m = 1; m <= 12; ++m)
      for (int s = 0; s < kNumStates; ++s)
        if (has(y, m, s)) out.push_back({y, m, s, get(y, m, s)});
  return out;
}

namespace {

// State baseline offsets (°C) relative to the national mean; roughly the
// real geography (maritime north warm in winter, elevated south/east cool).
constexpr std::array<double, kNumStates> kStateOffset = {
    +0.2, -0.6, +0.8, +0.4, +0.7, +0.7, +0.1, -0.1,
    +0.5, +0.7, +0.4, +0.6, -0.1, +0.4, +0.2, -0.7,
};

// Seasonal cycle (Jan..Dec deviations from the annual mean, °C), zero-sum.
constexpr std::array<double, 12> kSeasonal = {
    -8.6, -7.6, -4.3, -0.2, +4.7, +7.8, +9.6, +9.1, +5.5, +1.0, -3.7, -7.3,
};

double warming_at(const DwdModelParams& p, int year) {
  // Slow warming until 1970, steeper afterwards (the hockey-stick shape
  // that makes the stripes turn red on the right of Fig. 6).
  const int kink = 1970;
  if (year <= kink) {
    if (p.first_year >= kink) return p.warming_by_1970;
    const double t = static_cast<double>(year - p.first_year) /
                     static_cast<double>(kink - p.first_year);
    return p.warming_by_1970 * t;
  }
  const double t = static_cast<double>(year - kink) /
                   static_cast<double>(p.last_year - kink);
  return p.warming_by_1970 + (p.total_warming - p.warming_by_1970) * t;
}

}  // namespace

MonthlyDataset synthesize_dwd(const DwdModelParams& p) {
  double seasonal_mean = 0.0;
  for (double s : kSeasonal) seasonal_mean += s / 12.0;

  MonthlyDataset data(p.first_year, p.last_year);
  Rng rng(p.seed);
  for (int y = p.first_year; y <= p.last_year; ++y) {
    const double annual = p.national_base_c + warming_at(p, y) +
                          rng.normal(0.0, p.annual_noise_c);
    for (int m = 1; m <= 12; ++m) {
      const double seasonal = kSeasonal[static_cast<std::size_t>(m - 1)] -
                              seasonal_mean;
      for (int s = 0; s < kNumStates; ++s) {
        const double t = annual + seasonal +
                         kStateOffset[static_cast<std::size_t>(s)] +
                         rng.normal(0.0, p.monthly_noise_c);
        // DWD publishes one decimal place.
        data.set(y, m, s, std::round(t * 10.0) / 10.0);
      }
    }
  }
  return data;
}

std::vector<std::string> month_major_lines(const MonthlyDataset& data,
                                           int month) {
  PEACHY_REQUIRE(month >= 1 && month <= 12, "bad month " << month);
  std::vector<std::string> lines;
  std::string header = "year";
  for (const auto& name : state_names()) header += "," + name;
  lines.push_back(header);
  char buf[32];
  for (int y = data.first_year(); y <= data.last_year(); ++y) {
    std::string line = std::to_string(y);
    for (int s = 0; s < kNumStates; ++s) {
      line += ',';
      if (data.has(y, month, s)) {
        std::snprintf(buf, sizeof buf, "%.1f", data.get(y, month, s));
        line += buf;
      }
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

void write_month_major(const MonthlyDataset& data, const std::string& dir) {
  std::filesystem::create_directories(dir);
  char name[32];
  for (int m = 1; m <= 12; ++m) {
    std::snprintf(name, sizeof name, "tm_%02d.csv", m);
    std::ofstream os(dir + "/" + name);
    PEACHY_REQUIRE(os.good(), "cannot write " << dir << "/" << name);
    for (const auto& line : month_major_lines(data, m)) os << line << '\n';
  }
}

MonthlyDataset read_month_major(const std::string& dir, int first_year,
                                int last_year) {
  MonthlyDataset data(first_year, last_year);
  char name[32];
  for (int m = 1; m <= 12; ++m) {
    std::snprintf(name, sizeof name, "tm_%02d.csv", m);
    const auto rows = read_csv(dir + "/" + name);
    PEACHY_REQUIRE(!rows.empty(), "empty file " << dir << "/" << name);
    for (std::size_t r = 1; r < rows.size(); ++r) {
      const auto& row = rows[r];
      PEACHY_REQUIRE(row.size() == kNumStates + 1,
                     "bad row width " << row.size() << " in " << name);
      const int year = std::stoi(row[0]);
      for (int s = 0; s < kNumStates; ++s) {
        const std::string& field = row[static_cast<std::size_t>(s) + 1];
        if (!field.empty()) data.set(year, m, s, std::stod(field));
      }
    }
  }
  return data;
}

std::vector<std::string> long_format_lines(const MonthlyDataset& data) {
  std::vector<std::string> lines;
  lines.reserve(data.present_count());
  char buf[96];
  for (const Observation& o : data.observations()) {
    std::snprintf(buf, sizeof buf, "%s,%d,%d,%.1f",
                  state_names()[static_cast<std::size_t>(o.state)].c_str(),
                  o.year, o.month, o.temp_c);
    lines.emplace_back(buf);
  }
  return lines;
}

void drop_months(MonthlyDataset& data, int year, int from_month,
                 int to_month) {
  PEACHY_REQUIRE(from_month >= 1 && to_month <= 12 && from_month <= to_month,
                 "bad month range [" << from_month << "," << to_month << "]");
  for (int m = from_month; m <= to_month; ++m)
    for (int s = 0; s < kNumStates; ++s) data.clear(year, m, s);
}

ValidationReport validate(const MonthlyDataset& data) {
  ValidationReport report;
  for (int y = data.first_year(); y <= data.last_year(); ++y) {
    std::size_t missing = 0;
    for (int m = 1; m <= 12; ++m)
      for (int s = 0; s < kNumStates; ++s)
        if (!data.has(y, m, s)) ++missing;
    if (missing) {
      report.incomplete_years.push_back(y);
      report.missing_cells += missing;
    }
  }
  return report;
}

double AnnualSeries::overall_mean() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < mean_c.size(); ++i) {
    if (!complete[i]) continue;
    sum += mean_c[i];
    ++n;
  }
  PEACHY_REQUIRE(n > 0, "no complete year in series");
  return sum / static_cast<double>(n);
}

AnnualSeries annual_means_reference(const MonthlyDataset& data) {
  AnnualSeries series;
  series.first_year = data.first_year();
  for (int y = data.first_year(); y <= data.last_year(); ++y) {
    double sum = 0.0;
    int n = 0;
    for (int m = 1; m <= 12; ++m)
      for (int s = 0; s < kNumStates; ++s)
        if (data.has(y, m, s)) {
          sum += data.get(y, m, s);
          ++n;
        }
    series.has_any.push_back(n > 0);
    series.complete.push_back(n == 12 * kNumStates);
    series.mean_c.push_back(n > 0 ? sum / n : 0.0);
  }
  return series;
}

}  // namespace peachy::climate
