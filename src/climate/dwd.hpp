// The climate-data substrate of the Warming Stripes assignment (paper §III).
//
// The assignment downloads monthly mean temperatures per German state from
// the DWD (Deutscher Wetterdienst) open-data portal: 12 files, one per
// month, each holding one row per year and one column per state, 1881-2019.
// That endpoint is not reachable offline, so this module provides a
// deterministic synthetic stand-in calibrated to the paper's Fig. 6
// description (annual means rising from a low around 7 °C to a high around
// 10 °C over 1881-2019), plus the same file layouts, a long-format
// alternative layout (for the format-invariance requirement of §III.A.4),
// missing-data injection (the winter-2020 lesson of §III.A.3), validation,
// and a sequential reference for annual means.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace peachy::climate {

/// Number of German constituent states ("Bundesländer").
inline constexpr int kNumStates = 16;

/// State names in fixed column order.
const std::array<std::string, kNumStates>& state_names();

/// One monthly mean temperature observation.
struct Observation {
  int year = 0;
  int month = 0;  ///< 1..12
  int state = 0;  ///< index into state_names()
  double temp_c = 0.0;
};

/// Dense (year, month, state) table of monthly means with a missing mask.
class MonthlyDataset {
 public:
  MonthlyDataset(int first_year, int last_year);

  int first_year() const { return first_year_; }
  int last_year() const { return last_year_; }
  int num_years() const { return last_year_ - first_year_ + 1; }

  /// Stores an observation (year within range, month 1..12, valid state).
  void set(int year, int month, int state, double temp_c);
  /// Removes an observation (marks it missing).
  void clear(int year, int month, int state);

  bool has(int year, int month, int state) const;
  /// Value of a present observation; throws peachy::Error when missing.
  double get(int year, int month, int state) const;

  /// All present observations, in (year, month, state) order.
  std::vector<Observation> observations() const;

  std::size_t present_count() const { return present_count_; }

 private:
  std::size_t index(int year, int month, int state) const;

  int first_year_, last_year_;
  std::vector<double> values_;
  std::vector<std::uint8_t> present_;
  std::size_t present_count_ = 0;
};

/// Calibration of the synthetic DWD model.
struct DwdModelParams {
  int first_year = 1881;
  int last_year = 2019;
  double national_base_c = 7.6;    ///< Germany annual mean at first_year
  double warming_by_1970 = 0.35;   ///< slow pre-1970 warming (°C)
  double total_warming = 2.3;      ///< warming by last_year (°C)
  double annual_noise_c = 0.40;    ///< interannual stddev
  double monthly_noise_c = 1.10;   ///< per-(state,month) stddev
  std::uint64_t seed = 42;
};

/// Generates the synthetic dataset (complete: every cell present).
MonthlyDataset synthesize_dwd(const DwdModelParams& params = {});

// --- File layouts ----------------------------------------------------------

/// The month-major layout: for month m, a CSV with header
/// "year,<state0>,...,<state15>" and one row per year. Missing cells render
/// as empty fields. These are the lines of file `tm_<mm>.csv`.
std::vector<std::string> month_major_lines(const MonthlyDataset& data,
                                           int month);

/// Writes all 12 month-major files ("tm_01.csv".."tm_12.csv") into `dir`.
void write_month_major(const MonthlyDataset& data, const std::string& dir);

/// Parses the 12 month-major files back from `dir`.
MonthlyDataset read_month_major(const std::string& dir, int first_year,
                                int last_year);

/// The alternative long-format layout (§III.A.4: "different shapes of input
/// data are possible"): one line per observation, "state_name,year,month,temp".
std::vector<std::string> long_format_lines(const MonthlyDataset& data);

// --- Missing data & validation ---------------------------------------------

/// Drops months [from_month, to_month] of `year` in all states — e.g. the
/// missing winter months of a download made in late 2020.
void drop_months(MonthlyDataset& data, int year, int from_month, int to_month);

/// Result-validation report (§III.A.3 phase 4).
struct ValidationReport {
  std::vector<int> incomplete_years;  ///< years missing >= 1 observation
  std::size_t missing_cells = 0;
};
ValidationReport validate(const MonthlyDataset& data);

// --- Reference computation --------------------------------------------------

/// Annual Germany means with completeness flags.
struct AnnualSeries {
  int first_year = 0;
  std::vector<double> mean_c;      ///< mean over present observations
  std::vector<bool> complete;      ///< all 12 x 16 observations present
  std::vector<bool> has_any;       ///< at least one observation present

  int year_of(std::size_t i) const { return first_year + static_cast<int>(i); }
  /// Mean over complete years only (the colorbar anchor of Fig. 6).
  double overall_mean() const;
};

/// Sequential oracle: annual mean = average over all present (month, state)
/// observations of the year. The MapReduce implementations must match this.
AnnualSeries annual_means_reference(const MonthlyDataset& data);

}  // namespace peachy::climate
