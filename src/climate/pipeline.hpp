// The Warming-Stripes MapReduce pipelines (paper §III.A.2 and §III.A.4).
//
// Two implementations of "annual Germany mean per year":
//
//  * annual_means_mapreduce — the typed engine (mr::Job). The mapper parses
//    one line of a month-major DWD file and emits (year, {sum, count}) over
//    the states present in that row; a combiner pre-aggregates; the reducer
//    divides. This mirrors the paper's formulation (mapper averages over
//    states, reducer over months) but carries counts so incomplete rows
//    keep exact per-observation weighting.
//
//  * annual_means_streaming — the Hadoop-streaming flavor with the
//    §III.A.4 format-invariant pre-processing stage: the mapper detects
//    whether a raw line is month-major ("year,t0..t15") or long-format
//    ("state,year,month,temp"), normalizes it, and emits "year<TAB>temp"
//    lines; the reducer walks its sorted partition and averages per key.
//
// Both must agree exactly with climate::annual_means_reference — a property
// the tests sweep over worker counts and missing-data patterns.
#pragma once

#include <string>
#include <vector>

#include "climate/dwd.hpp"
#include "dmr/job.hpp"
#include "mapreduce/job.hpp"
#include "mapreduce/streaming.hpp"

namespace peachy::climate {

/// Worker configuration for the typed pipeline.
struct PipelineConfig {
  int map_workers = 2;
  int reduce_workers = 2;
  bool use_combiner = true;
  int map_tasks = 0;   ///< input splits; 0 = the engine default
  int partitions = 0;  ///< reduce partitions; 0 = the engine default
};

/// Configuration for the distributed pipeline: the full dmr::Options
/// (ranks, transport, spawn, spill budget, checkpointing) plus the same
/// combiner toggle the in-process pipeline has. For output identical to
/// annual_means_mapreduce, run both with the same map_tasks/partitions.
struct DmrPipelineConfig {
  dmr::Options options;
  bool use_combiner = true;
};

/// All data lines of the 12 month-major files, headers included
/// (the mapper must skip them — part of the pre-processing lesson).
std::vector<std::string> month_major_all_lines(const MonthlyDataset& data);

/// Typed-engine pipeline over the month-major lines of `data`.
AnnualSeries annual_means_mapreduce(const MonthlyDataset& data,
                                    const PipelineConfig& config = {});

/// Distributed pipeline: the same job as annual_means_mapreduce executed
/// on the dmr engine across config.options.ranks ranks (threads, sockets
/// or spawned processes). Forks when options.run.spawn is set — call it
/// before anything creates the shared task arena.
AnnualSeries annual_means_dmr(const MonthlyDataset& data,
                              const DmrPipelineConfig& config = {});

/// Streaming pipeline over raw `lines` in either layout (may be mixed).
/// Years outside [first_year, last_year] are rejected with an error.
AnnualSeries annual_means_streaming(const std::vector<std::string>& lines,
                                    int first_year, int last_year,
                                    const mr::streaming::StreamingConfig&
                                        config = {});

/// Counters of the last annual_means_mapreduce call on this thread
/// (exposed for tests/benchmarks that check engine behaviour).
const mr::JobCounters& last_pipeline_counters();

/// Counters and world stats of the last annual_means_dmr call on this
/// thread (shuffle bytes, spills, partition skew, restarts).
struct DmrPipelineStats {
  dmr::Counters counters;
  mpp::CommStats comm;
  int restarts = 0;
};
const DmrPipelineStats& last_dmr_stats();

}  // namespace peachy::climate
