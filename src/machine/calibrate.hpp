// Calibration: fit machine-model edge parameters from measured obs metrics.
//
// The ground truth is the transport's own telemetry: `net.rtt_ns` and
// `net.frame_bytes` histograms recorded by the TCP backend (obs keeps exact
// sums, so histogram means are exact). Each metric snapshot taken after a
// run at one frame size yields one calibration point (mean bytes, mean RTT);
// two or more points at distinct sizes resolve the classic linear cost model
//
//     rtt_s(bytes) = 2 * latency_s + bytes / bytes_per_s
//
// by least squares, each point weighted by its frame count (a point is a
// mean over that many samples, so its variance shrinks with the count): the
// slope is the inverse bottleneck bandwidth, the intercept twice the
// one-way latency (the ack is assumed empty). The fit is
// applied to the NIC edges of every group — the NIC is the only edge the
// transport exercises — and the fabric inherits the fitted bandwidth with
// zero latency, so a one-way prediction through nic -> fabric -> nic costs
// exactly intercept/2 + bytes/bandwidth.
//
// Contract: snapshots missing either histogram, with zero observations, or
// with corrupt (negative) sums throw peachy::Error — calibration never
// guesses. Fits that do not resolve a positive bandwidth (non-increasing RTT
// with size, or all points at one size) also throw.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine.hpp"
#include "obs/obs.hpp"

namespace peachy::machine {

/// One measured operating point, derived from one metric snapshot.
struct CalibrationPoint {
  double mean_frame_bytes = 0.0;
  double mean_rtt_s = 0.0;
  std::uint64_t frames = 0;
};

/// Extracts the point from a snapshot (`obs::Registry::samples()` output).
/// Throws peachy::Error when the snapshot is unusable (see file comment).
CalibrationPoint calibration_point(const std::vector<obs::MetricSample>& snapshot);

/// A fitted link with the fit quality: largest absolute RTT residual over
/// the input points, in seconds.
struct LinkFit {
  LinkSpec link;
  double max_residual_s = 0.0;
  int points = 0;
};

/// Least-squares fit of the linear RTT model over >= 2 points at distinct
/// frame sizes. Throws peachy::Error when underdetermined or when the fit
/// yields a non-positive bandwidth.
LinkFit fit_link(const std::vector<CalibrationPoint>& points);

/// Returns `base` with NIC and fabric edges replaced by parameters fitted
/// from `snapshots` (one snapshot per measured frame size). The returned
/// machine revalidates; all errors are loud.
Machine from_measurements(
    Machine base, const std::vector<std::vector<obs::MetricSample>>& snapshots);

}  // namespace peachy::machine
