#include "machine/calibrate.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace peachy::machine {
namespace {

const obs::MetricSample& find_histogram(
    const std::vector<obs::MetricSample>& snapshot, const char* name) {
  for (const obs::MetricSample& s : snapshot) {
    if (s.name != name) continue;
    PEACHY_REQUIRE(s.kind == obs::MetricSample::Kind::kHistogram,
                   "calibration metric " << name << " is not a histogram");
    PEACHY_REQUIRE(s.count > 0,
                   "calibration metric " << name << " has no observations");
    PEACHY_REQUIRE(s.sum >= 0,
                   "calibration metric " << name << " has a corrupt sum");
    return s;
  }
  throw Error(std::string("calibration snapshot is missing metric ") + name);
}

}  // namespace

CalibrationPoint calibration_point(
    const std::vector<obs::MetricSample>& snapshot) {
  const obs::MetricSample& rtt = find_histogram(snapshot, "net.rtt_ns");
  const obs::MetricSample& bytes = find_histogram(snapshot, "net.frame_bytes");
  CalibrationPoint p;
  p.frames = bytes.count;
  p.mean_frame_bytes =
      static_cast<double>(bytes.sum) / static_cast<double>(bytes.count);
  p.mean_rtt_s = static_cast<double>(rtt.sum) /
                 static_cast<double>(rtt.count) * 1e-9;
  return p;
}

LinkFit fit_link(const std::vector<CalibrationPoint>& points) {
  PEACHY_REQUIRE(points.size() >= 2,
                 "link fit needs >= 2 calibration points, got "
                     << points.size());
  // Weighted least squares, weight = the point's frame count: each point is
  // a *mean* over that many per-frame RTT samples, so its variance shrinks
  // with the count and the minimum-variance line weights it accordingly.
  // (A sweep's small-frame configs run many more exchanges per second than
  // the large ones; unweighted LS would let a noisy thin point at the top
  // of the range tilt the whole fit.) Synthetic/unit points with frames
  // left at zero still count with weight one.
  double sw = 0, sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const CalibrationPoint& p : points) {
    PEACHY_REQUIRE(p.mean_frame_bytes >= 0.0 && p.mean_rtt_s >= 0.0 &&
                       std::isfinite(p.mean_frame_bytes) &&
                       std::isfinite(p.mean_rtt_s),
                   "calibration point is corrupt");
    const double w = std::max<double>(1.0, static_cast<double>(p.frames));
    sw += w;
    sx += w * p.mean_frame_bytes;
    sy += w * p.mean_rtt_s;
    sxx += w * p.mean_frame_bytes * p.mean_frame_bytes;
    sxy += w * p.mean_frame_bytes * p.mean_rtt_s;
  }
  const double det = sw * sxx - sx * sx;
  PEACHY_REQUIRE(det > 1e-9,
                 "calibration points are all at one frame size — bandwidth "
                 "is unresolvable");
  const double slope = (sw * sxy - sx * sy) / det;       // s per byte
  const double intercept = (sy - slope * sx) / sw;       // 2 * latency
  PEACHY_REQUIRE(slope > 0.0,
                 "calibration fit yields non-positive bandwidth (RTT does "
                 "not grow with frame size)");
  LinkFit fit;
  fit.link.bytes_per_s = 1.0 / slope;
  fit.link.latency_s = std::max(0.0, intercept / 2.0);
  fit.points = static_cast<int>(points.size());
  for (const CalibrationPoint& p : points) {
    const double predicted = intercept + slope * p.mean_frame_bytes;
    fit.max_residual_s =
        std::max(fit.max_residual_s, std::abs(predicted - p.mean_rtt_s));
  }
  return fit;
}

Machine from_measurements(
    Machine base,
    const std::vector<std::vector<obs::MetricSample>>& snapshots) {
  std::vector<CalibrationPoint> points;
  points.reserve(snapshots.size());
  for (const auto& snapshot : snapshots)
    points.push_back(calibration_point(snapshot));
  const LinkFit fit = fit_link(points);
  // The transport path is nic -> fabric -> nic. Fitted latency lands on the
  // NIC edges (half each way); the fabric carries the fitted bandwidth with
  // zero latency so it never bottlenecks a single flow below the fit.
  for (NodeGroup& g : base.groups) {
    g.nic.bytes_per_s = fit.link.bytes_per_s;
    g.nic.latency_s = fit.link.latency_s / 2.0;
  }
  base.fabric.bytes_per_s = fit.link.bytes_per_s;
  base.fabric.latency_s = 0.0;
  base.validate();
  return base;
}

}  // namespace peachy::machine
