// Placement advisor: map dmr ranks onto machine nodes and shuffle
// partitions onto ranks using the measured partition-traffic profile.
//
// The dmr shuffle sends every partition's records from all R ranks (map
// output is spread uniformly) to the partition's owner, so the bytes that
// cross a node boundary for partition p are
//
//     bytes[p] * (R - ranks_on_node(owner(p))) / R.
//
// The advisor places ranks on nodes in contiguous blocks, then assigns
// partitions to ranks heaviest-first (LPT): minimize per-rank load, break
// ties toward nodes hosting more ranks (cheaper shuffle), then toward the
// lowest rank id — fully deterministic. The static p % R baseline is
// exposed for comparison, and both report predicted cross-node bytes plus a
// shuffle-time estimate through the machine's NIC/fabric edges.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine.hpp"

namespace peachy::machine {

struct Placement {
  std::vector<int> rank_node;        ///< rank -> flat node index
  std::vector<int> partition_owner;  ///< partition -> rank
  double cross_node_bytes = 0.0;
  double predicted_shuffle_s = 0.0;  ///< bottleneck-node inbound estimate
  /// Heaviest per-rank inbound bytes divided by the mean — 1.0 is perfectly
  /// balanced; the static p % R mapping on skewed traffic is typically > 1.
  double load_imbalance = 1.0;
};

class PlacementAdvisor {
 public:
  /// Throws peachy::Error when `m` fails validation.
  explicit PlacementAdvisor(Machine m);

  /// Recommends a placement for `ranks` ranks given per-partition shuffle
  /// bytes. Requires ranks >= 1 and a non-empty traffic vector.
  Placement recommend(int ranks,
                      const std::vector<std::uint64_t>& partition_bytes) const;

  /// The legacy static placement (partition p -> rank p % R) on the same
  /// rank->node layout, scored with the same model.
  Placement baseline(int ranks,
                     const std::vector<std::uint64_t>& partition_bytes) const;

  const Machine& machine() const { return machine_; }

 private:
  std::vector<int> block_rank_nodes(int ranks) const;
  void score(Placement& p,
             const std::vector<std::uint64_t>& partition_bytes) const;

  Machine machine_;
};

}  // namespace peachy::machine
