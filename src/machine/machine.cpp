#include "machine/machine.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "core/error.hpp"

namespace peachy::machine {

double NodeGroup::gflops_at(int state) const {
  if (state < 0 || core_clock_states.empty()) return core_gflops;
  PEACHY_REQUIRE(state < static_cast<int>(core_clock_states.size()),
                 "clock state " << state << " out of range for group " << name);
  return core_gflops * core_clock_states[static_cast<std::size_t>(state)];
}

int Machine::total_nodes() const {
  int n = 0;
  for (const NodeGroup& g : groups) n += g.nodes;
  return n;
}

int Machine::total_cores() const {
  int n = 0;
  for (const NodeGroup& g : groups)
    n += g.nodes * g.sockets_per_node * g.cores_per_socket;
  return n;
}

int Machine::group_index(const std::string& name) const {
  for (std::size_t i = 0; i < groups.size(); ++i)
    if (groups[i].name == name) return static_cast<int>(i);
  throw Error("machine has no node group named \"" + name + "\"");
}

const NodeGroup& Machine::group(const std::string& name) const {
  return groups[static_cast<std::size_t>(group_index(name))];
}

namespace {

void validate_link(const std::string& group, const char* kind,
                   const LinkSpec& link, bool required) {
  if (required)
    PEACHY_REQUIRE(link.bytes_per_s > 0.0,
                   "group " << group << ": " << kind
                            << " bandwidth must be positive");
  PEACHY_REQUIRE(link.latency_s >= 0.0,
                 "group " << group << ": " << kind
                          << " latency must be non-negative");
}

}  // namespace

void Machine::validate() const {
  PEACHY_REQUIRE(!groups.empty(), "machine has no node groups");
  std::set<std::string> names;
  for (const NodeGroup& g : groups) {
    PEACHY_REQUIRE(!g.name.empty(), "node group name must be non-empty");
    PEACHY_REQUIRE(names.insert(g.name).second,
                   "duplicate node group name \"" << g.name << "\"");
    PEACHY_REQUIRE(g.nodes >= 1, "group " << g.name << ": nodes must be >= 1");
    PEACHY_REQUIRE(g.sockets_per_node >= 1,
                   "group " << g.name << ": sockets_per_node must be >= 1");
    PEACHY_REQUIRE(g.cores_per_socket >= 1,
                   "group " << g.name << ": cores_per_socket must be >= 1");
    PEACHY_REQUIRE(g.core_gflops > 0.0,
                   "group " << g.name << ": core_gflops must be positive");
    for (double c : g.core_clock_states)
      PEACHY_REQUIRE(c > 0.0,
                     "group " << g.name << ": clock states must be positive");
    validate_link(g.name, "l3", g.l3, /*required=*/true);
    validate_link(g.name, "membus", g.membus, /*required=*/true);
    validate_link(g.name, "upi", g.upi, /*required=*/g.sockets_per_node > 1);
    validate_link(g.name, "nic", g.nic, /*required=*/true);
    validate_link(g.name, "uplink", g.uplink, /*required=*/false);
  }
  const bool networked = total_nodes() > 1;
  if (networked)
    PEACHY_REQUIRE(fabric.bytes_per_s > 0.0,
                   "fabric bandwidth must be positive on a multi-node machine");
  PEACHY_REQUIRE(fabric.latency_s >= 0.0, "fabric latency must be non-negative");
}

const char* to_string(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kL3: return "l3";
    case EdgeKind::kMembus: return "membus";
    case EdgeKind::kUpi: return "upi";
    case EdgeKind::kNic: return "nic";
    case EdgeKind::kUplink: return "uplink";
    case EdgeKind::kFabric: return "fabric";
  }
  return "?";
}

void check_core(const Machine& m, const CoreId& id) {
  PEACHY_REQUIRE(id.group >= 0 && id.group < static_cast<int>(m.groups.size()),
                 "core group " << id.group << " out of range");
  const NodeGroup& g = m.groups[static_cast<std::size_t>(id.group)];
  PEACHY_REQUIRE(id.node >= 0 && id.node < g.nodes,
                 "core node " << id.node << " out of range for group " << g.name);
  PEACHY_REQUIRE(id.socket >= 0 && id.socket < g.sockets_per_node,
                 "core socket " << id.socket << " out of range for group "
                                << g.name);
  PEACHY_REQUIRE(id.core >= 0 && id.core < g.cores_per_socket,
                 "core index " << id.core << " out of range for group "
                               << g.name);
}

const LinkSpec& edge_spec(const Machine& m, const EdgeRef& e) {
  if (e.kind == EdgeKind::kFabric) return m.fabric;
  PEACHY_REQUIRE(e.group >= 0 && e.group < static_cast<int>(m.groups.size()),
                 "edge group " << e.group << " out of range");
  const NodeGroup& g = m.groups[static_cast<std::size_t>(e.group)];
  switch (e.kind) {
    case EdgeKind::kL3: return g.l3;
    case EdgeKind::kMembus: return g.membus;
    case EdgeKind::kUpi: return g.upi;
    case EdgeKind::kNic: return g.nic;
    case EdgeKind::kUplink: return g.uplink;
    case EdgeKind::kFabric: break;
  }
  return m.fabric;
}

namespace {

// The path from a core up to (but excluding) the fabric, in leaf-to-root
// order. `to_node` stops at the node boundary (for intra-node routes).
void ascend(const Machine& m, const CoreId& id, bool to_node,
            std::vector<EdgeRef>& out) {
  const NodeGroup& g = m.groups[static_cast<std::size_t>(id.group)];
  out.push_back({EdgeKind::kL3, id.group, id.node, id.socket});
  out.push_back({EdgeKind::kMembus, id.group, id.node, id.socket});
  if (to_node) return;
  out.push_back({EdgeKind::kNic, id.group, id.node, -1});
  if (g.has_uplink()) out.push_back({EdgeKind::kUplink, id.group, -1, -1});
}

}  // namespace

Route route(const Machine& m, const CoreId& src, const CoreId& dst) {
  check_core(m, src);
  check_core(m, dst);
  Route r;
  if (src == dst) return r;

  const bool same_node = src.group == dst.group && src.node == dst.node;
  if (same_node && src.socket == dst.socket) {
    // Sibling cores exchange through their shared L3.
    r.edges.push_back({EdgeKind::kL3, src.group, src.node, src.socket});
  } else if (same_node) {
    // Across sockets: L3 -> membus -> UPI -> membus -> L3.
    ascend(m, src, /*to_node=*/true, r.edges);
    r.edges.push_back({EdgeKind::kUpi, src.group, src.node, -1});
    std::vector<EdgeRef> down;
    ascend(m, dst, /*to_node=*/true, down);
    r.edges.insert(r.edges.end(), down.rbegin(), down.rend());
  } else {
    // Across nodes: up through the source NIC (and group uplink), over the
    // fabric, down through the destination side mirrored.
    ascend(m, src, /*to_node=*/false, r.edges);
    r.edges.push_back({EdgeKind::kFabric, -1, -1, -1});
    std::vector<EdgeRef> down;
    ascend(m, dst, /*to_node=*/false, down);
    r.edges.insert(r.edges.end(), down.rbegin(), down.rend());
  }

  r.min_bytes_per_s = std::numeric_limits<double>::infinity();
  for (const EdgeRef& e : r.edges) {
    const LinkSpec& spec = edge_spec(m, e);
    PEACHY_REQUIRE(spec.bytes_per_s > 0.0,
                   "route crosses " << to_string(e.kind)
                                    << " edge with zero bandwidth");
    r.latency_s += spec.latency_s;
    r.min_bytes_per_s = std::min(r.min_bytes_per_s, spec.bytes_per_s);
  }
  return r;
}

double predict_transfer_s(const Machine& m, const CoreId& src,
                          const CoreId& dst, double bytes, int messages) {
  PEACHY_REQUIRE(bytes >= 0.0, "bytes must be non-negative");
  PEACHY_REQUIRE(messages >= 1, "messages must be >= 1");
  const Route r = route(m, src, dst);
  if (r.edges.empty()) return 0.0;
  return static_cast<double>(messages) * r.latency_s +
         bytes / r.min_bytes_per_s;
}

}  // namespace peachy::machine
