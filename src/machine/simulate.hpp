// Comp+comm task-DAG simulation over the hierarchical machine model.
//
// Tasks are pinned to cores and run FIFO per core; transfers between tasks
// are routed through the hierarchy (machine::route) and share every edge on
// their path fair-share, SimGrid-style: whenever the set of active flows
// changes, each flow's rate becomes min over its route edges of
// bandwidth(edge) / flows_on(edge), and in-flight progress is advanced
// before rates are recomputed. Route latency is paid once per transfer as a
// fixed delay before the flow starts moving bytes.
//
// Everything runs on sim::Engine, so results are deterministic and
// bit-reproducible: equal-time events fire in scheduling order.
#pragma once

#include <vector>

#include "machine/machine.hpp"

namespace peachy::machine {

/// One compute task: `flops` of work pinned to `core`, eligible once every
/// task in `deps` has finished and every inbound transfer has arrived.
struct Task {
  double flops = 0.0;
  CoreId core;
  std::vector<int> deps;
};

/// A typed data movement from task `src` to task `dst`. The transfer starts
/// when `src` finishes; `dst` cannot start before it completes. Transfers
/// between tasks on the same core are free (no edges, no latency).
struct Transfer {
  int src = -1;
  int dst = -1;
  double bytes = 0.0;
};

struct Dag {
  std::vector<Task> tasks;
  std::vector<Transfer> transfers;
};

/// Per-edge traffic accounting: total bytes carried and the wall-clock time
/// the edge had at least one active flow.
struct EdgeUsage {
  EdgeRef edge;
  double bytes = 0.0;
  double busy_s = 0.0;
};

struct Report {
  double makespan_s = 0.0;
  std::vector<double> task_start_s;
  std::vector<double> task_finish_s;
  std::vector<double> transfer_start_s;   ///< when the source task finished
  std::vector<double> transfer_finish_s;  ///< when the last byte arrived
  std::vector<EdgeUsage> edges;           ///< sorted by EdgeRef
};

/// Simulates `dag` on `m`. Throws peachy::Error on malformed input (bad
/// core/task indices, negative work) or when dependencies are cyclic.
Report simulate(const Machine& m, const Dag& dag);

}  // namespace peachy::machine
