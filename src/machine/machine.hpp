// Hierarchical machine model: nodes -> sockets -> cores with typed
// bandwidth/latency edges (core<->L3, socket<->membus, socket<->socket UPI,
// node<->NIC<->switch fabric).
//
// The model is deliberately homogeneous *per node group*: a group describes
// one class of identical nodes (e.g. "cluster" or "cloud"), and a machine is
// a set of groups hanging off one switch fabric, optionally through a group
// uplink (a WAN link for a remote cloud group). That is enough to express
// every platform in the paper's SS IV experiments while keeping routing and
// the JSON codec small and deterministic.
//
// Routing is static: the unique hierarchical path between two cores. Every
// edge instance (a particular socket's membus, a particular node's NIC, ...)
// is addressable so the simulator can apply fair-share contention per edge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace peachy::machine {

/// One typed link: sustained bandwidth plus one-way latency.
struct LinkSpec {
  double bytes_per_s = 0.0;
  double latency_s = 0.0;
};

/// A class of identical nodes. `core_gflops` is the per-core speed at clock
/// multiplier 1.0; `core_clock_states` optionally lists DVFS multipliers
/// (ascending) for platforms with selectable p-states — the effective speed
/// of state i is `core_gflops * core_clock_states[i]`.
struct NodeGroup {
  std::string name;
  int nodes = 1;
  int sockets_per_node = 1;
  int cores_per_socket = 1;
  double core_gflops = 1.0;
  std::vector<double> core_clock_states;  ///< empty = single state at 1.0

  LinkSpec l3;      ///< core <-> socket L3
  LinkSpec membus;  ///< socket <-> node memory bus
  LinkSpec upi;     ///< socket <-> socket (required when sockets_per_node > 1)
  LinkSpec nic;     ///< node <-> fabric (or group uplink)
  LinkSpec uplink;  ///< group <-> fabric; bytes_per_s == 0 means direct

  bool has_uplink() const { return uplink.bytes_per_s > 0.0; }
  /// Effective core speed of DVFS state `state` (gflops). State -1 or an
  /// empty state list selects the nominal multiplier 1.0.
  double gflops_at(int state = -1) const;
};

/// The whole platform: node groups joined by one switch fabric.
struct Machine {
  std::vector<NodeGroup> groups;
  LinkSpec fabric;

  int total_nodes() const;
  int total_cores() const;
  /// Index of the named group; throws peachy::Error if absent.
  int group_index(const std::string& name) const;
  const NodeGroup& group(const std::string& name) const;
  /// Throws peachy::Error describing the first structural problem: empty or
  /// duplicate group names, non-positive counts/speeds, missing required
  /// link bandwidths, negative latencies.
  void validate() const;
};

/// Addresses one core: group / node-within-group / socket / core.
struct CoreId {
  int group = 0;
  int node = 0;
  int socket = 0;
  int core = 0;

  friend bool operator==(const CoreId&, const CoreId&) = default;
};

/// Edge classes, ordered from the leaf up.
enum class EdgeKind : std::uint8_t {
  kL3 = 0,      ///< per (group, node, socket)
  kMembus = 1,  ///< per (group, node, socket)
  kUpi = 2,     ///< per (group, node)
  kNic = 3,     ///< per (group, node)
  kUplink = 4,  ///< per (group)
  kFabric = 5,  ///< singleton
};

const char* to_string(EdgeKind kind);

/// One concrete edge instance. Coordinates not meaningful for the kind are
/// -1 so refs compare and sort deterministically.
struct EdgeRef {
  EdgeKind kind = EdgeKind::kFabric;
  int group = -1;
  int node = -1;
  int socket = -1;

  friend bool operator==(const EdgeRef&, const EdgeRef&) = default;
  friend auto operator<=>(const EdgeRef&, const EdgeRef&) = default;
};

/// The static hierarchical path between two cores. `latency_s` is the sum of
/// edge latencies; `min_bytes_per_s` the uncontended bottleneck bandwidth.
/// A self-route (src == dst) has no edges and zero latency.
struct Route {
  std::vector<EdgeRef> edges;
  double latency_s = 0.0;
  double min_bytes_per_s = 0.0;
};

/// Bounds-checks `id` against `m`; throws peachy::Error when out of range.
void check_core(const Machine& m, const CoreId& id);

/// The LinkSpec backing one edge instance.
const LinkSpec& edge_spec(const Machine& m, const EdgeRef& e);

/// Deterministic route between two cores (see file comment for the rules).
Route route(const Machine& m, const CoreId& src, const CoreId& dst);

/// Uncontended cost of moving `bytes` as `messages` equal messages from
/// `src` to `dst`: messages * route latency + bytes / bottleneck bandwidth.
double predict_transfer_s(const Machine& m, const CoreId& src,
                          const CoreId& dst, double bytes, int messages = 1);

}  // namespace peachy::machine
