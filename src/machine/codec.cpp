#include "machine/codec.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "core/error.hpp"

namespace peachy::machine {
namespace {

json::Value link_to_json(const LinkSpec& l) {
  json::Object o;
  o["bytes_per_s"] = l.bytes_per_s;
  o["latency_s"] = l.latency_s;
  return o;
}

LinkSpec link_from_json(const json::Value& v, const char* what) {
  PEACHY_REQUIRE(v.is_object(), "machine json: " << what
                                                 << " must be an object");
  for (const auto& [key, _] : v.as_object())
    PEACHY_REQUIRE(key == "bytes_per_s" || key == "latency_s",
                   "machine json: unknown key \"" << key << "\" in " << what);
  LinkSpec l;
  l.bytes_per_s = v.at("bytes_per_s").as_number();
  l.latency_s = v.at("latency_s").as_number();
  return l;
}

json::Value group_to_json(const NodeGroup& g) {
  json::Object o;
  o["name"] = g.name;
  o["nodes"] = g.nodes;
  o["sockets_per_node"] = g.sockets_per_node;
  o["cores_per_socket"] = g.cores_per_socket;
  o["core_gflops"] = g.core_gflops;
  if (!g.core_clock_states.empty()) {
    json::Array states;
    for (double c : g.core_clock_states) states.push_back(c);
    o["core_clock_states"] = std::move(states);
  }
  o["l3"] = link_to_json(g.l3);
  o["membus"] = link_to_json(g.membus);
  if (g.sockets_per_node > 1 || g.upi.bytes_per_s > 0.0)
    o["upi"] = link_to_json(g.upi);
  o["nic"] = link_to_json(g.nic);
  if (g.has_uplink()) o["uplink"] = link_to_json(g.uplink);
  return o;
}

NodeGroup group_from_json(const json::Value& v) {
  PEACHY_REQUIRE(v.is_object(), "machine json: group must be an object");
  static const std::set<std::string> kKeys = {
      "name",   "nodes", "sockets_per_node", "cores_per_socket",
      "core_gflops", "core_clock_states", "l3", "membus", "upi", "nic",
      "uplink"};
  for (const auto& [key, _] : v.as_object())
    PEACHY_REQUIRE(kKeys.count(key),
                   "machine json: unknown group key \"" << key << "\"");
  NodeGroup g;
  g.name = v.at("name").as_string();
  g.nodes = static_cast<int>(v.at("nodes").as_int());
  g.sockets_per_node = static_cast<int>(v.at("sockets_per_node").as_int());
  g.cores_per_socket = static_cast<int>(v.at("cores_per_socket").as_int());
  g.core_gflops = v.at("core_gflops").as_number();
  if (v.contains("core_clock_states")) {
    const json::Array& states = v.at("core_clock_states").as_array();
    for (const json::Value& s : states)
      g.core_clock_states.push_back(s.as_number());
  }
  g.l3 = link_from_json(v.at("l3"), "l3");
  g.membus = link_from_json(v.at("membus"), "membus");
  if (v.contains("upi")) g.upi = link_from_json(v.at("upi"), "upi");
  g.nic = link_from_json(v.at("nic"), "nic");
  if (v.contains("uplink")) g.uplink = link_from_json(v.at("uplink"), "uplink");
  return g;
}

}  // namespace

json::Value to_json(const Machine& m) {
  json::Object o;
  o["fabric"] = link_to_json(m.fabric);
  json::Array groups;
  for (const NodeGroup& g : m.groups) groups.push_back(group_to_json(g));
  o["groups"] = std::move(groups);
  return o;
}

Machine machine_from_json(const json::Value& v) {
  PEACHY_REQUIRE(v.is_object(), "machine json: document must be an object");
  for (const auto& [key, _] : v.as_object())
    PEACHY_REQUIRE(key == "fabric" || key == "groups",
                   "machine json: unknown key \"" << key << "\"");
  Machine m;
  m.fabric = link_from_json(v.at("fabric"), "fabric");
  const json::Array& groups = v.at("groups").as_array();
  for (const json::Value& g : groups) m.groups.push_back(group_from_json(g));
  m.validate();
  return m;
}

std::string dump_machine(const Machine& m) {
  return to_json(m).dump(/*indent=*/true);
}

Machine parse_machine(const std::string& text) {
  return machine_from_json(json::parse(text));
}

Machine load_machine(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PEACHY_REQUIRE(in.good(), "cannot open machine file " << path);
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse_machine(text.str());
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

void save_machine(const Machine& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  PEACHY_REQUIRE(out.good(), "cannot write machine file " << path);
  out << dump_machine(m) << "\n";
  PEACHY_REQUIRE(out.good(), "short write to machine file " << path);
}

}  // namespace peachy::machine
