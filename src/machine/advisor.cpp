#include "machine/advisor.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/error.hpp"

namespace peachy::machine {

PlacementAdvisor::PlacementAdvisor(Machine m) : machine_(std::move(m)) {
  machine_.validate();
}

// Contiguous block distribution: node i hosts ranks [i*R/N, (i+1)*R/N).
std::vector<int> PlacementAdvisor::block_rank_nodes(int ranks) const {
  const int nodes = std::min(machine_.total_nodes(), ranks);
  std::vector<int> rank_node(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r)
    rank_node[static_cast<std::size_t>(r)] =
        static_cast<int>(static_cast<std::int64_t>(r) * nodes / ranks);
  return rank_node;
}

void PlacementAdvisor::score(
    Placement& p, const std::vector<std::uint64_t>& partition_bytes) const {
  const int ranks = static_cast<int>(p.rank_node.size());
  std::vector<int> ranks_on_node(
      static_cast<std::size_t>(machine_.total_nodes()), 0);
  for (int n : p.rank_node) ++ranks_on_node[static_cast<std::size_t>(n)];

  std::vector<double> node_inbound(ranks_on_node.size(), 0.0);
  std::vector<double> rank_load(static_cast<std::size_t>(ranks), 0.0);
  double total = 0.0;
  p.cross_node_bytes = 0.0;
  for (std::size_t i = 0; i < partition_bytes.size(); ++i) {
    const double bytes = static_cast<double>(partition_bytes[i]);
    const int owner = p.partition_owner[i];
    const int node = p.rank_node[static_cast<std::size_t>(owner)];
    const double cross =
        bytes *
        static_cast<double>(ranks - ranks_on_node[static_cast<std::size_t>(node)]) /
        static_cast<double>(ranks);
    p.cross_node_bytes += cross;
    node_inbound[static_cast<std::size_t>(node)] += cross;
    rank_load[static_cast<std::size_t>(owner)] += bytes;
    total += bytes;
  }

  const double mean = total / static_cast<double>(ranks);
  const double peak = *std::max_element(rank_load.begin(), rank_load.end());
  p.load_imbalance = mean > 0.0 ? peak / mean : 1.0;

  // Shuffle-time estimate: the bottleneck node drains its inbound
  // cross-node bytes through its NIC, paying route latency once per sending
  // rank. Zero cross traffic (single node) predicts zero.
  const double worst =
      *std::max_element(node_inbound.begin(), node_inbound.end());
  p.predicted_shuffle_s = 0.0;
  if (worst > 0.0 && machine_.total_nodes() > 1) {
    const CoreId src{0, 0, 0, 0};
    CoreId dst = src;
    dst.node = 1;  // any remote node: the model is homogeneous per group
    if (machine_.groups[0].nodes < 2) dst = CoreId{1, 0, 0, 0};
    p.predicted_shuffle_s =
        predict_transfer_s(machine_, src, dst, worst, std::max(1, ranks - 1));
  }
}

Placement PlacementAdvisor::recommend(
    int ranks, const std::vector<std::uint64_t>& partition_bytes) const {
  PEACHY_REQUIRE(ranks >= 1, "ranks must be >= 1");
  PEACHY_REQUIRE(!partition_bytes.empty(), "partition traffic is empty");
  Placement p;
  p.rank_node = block_rank_nodes(ranks);
  std::vector<int> ranks_on_node(
      static_cast<std::size_t>(machine_.total_nodes()), 0);
  for (int n : p.rank_node) ++ranks_on_node[static_cast<std::size_t>(n)];

  // Heaviest partitions first; ties by partition index.
  std::vector<int> order(partition_bytes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return partition_bytes[static_cast<std::size_t>(a)] >
           partition_bytes[static_cast<std::size_t>(b)];
  });

  p.partition_owner.assign(partition_bytes.size(), 0);
  std::vector<double> rank_load(static_cast<std::size_t>(ranks), 0.0);
  for (int part : order) {
    int best = 0;
    for (int r = 1; r < ranks; ++r) {
      const double lr = rank_load[static_cast<std::size_t>(r)];
      const double lb = rank_load[static_cast<std::size_t>(best)];
      if (lr < lb) {
        best = r;
        continue;
      }
      if (lr > lb) continue;
      // Equal load: prefer the rank whose node hosts more ranks — more of
      // the partition's traffic stays on-node.
      const int nr = ranks_on_node[static_cast<std::size_t>(
          p.rank_node[static_cast<std::size_t>(r)])];
      const int nb = ranks_on_node[static_cast<std::size_t>(
          p.rank_node[static_cast<std::size_t>(best)])];
      if (nr > nb) best = r;
    }
    p.partition_owner[static_cast<std::size_t>(part)] = best;
    rank_load[static_cast<std::size_t>(best)] +=
        static_cast<double>(partition_bytes[static_cast<std::size_t>(part)]);
  }
  score(p, partition_bytes);
  return p;
}

Placement PlacementAdvisor::baseline(
    int ranks, const std::vector<std::uint64_t>& partition_bytes) const {
  PEACHY_REQUIRE(ranks >= 1, "ranks must be >= 1");
  PEACHY_REQUIRE(!partition_bytes.empty(), "partition traffic is empty");
  Placement p;
  p.rank_node = block_rank_nodes(ranks);
  p.partition_owner.resize(partition_bytes.size());
  for (std::size_t i = 0; i < partition_bytes.size(); ++i)
    p.partition_owner[i] = static_cast<int>(i) % ranks;
  score(p, partition_bytes);
  return p;
}

}  // namespace peachy::machine
