// JSON round-trip codec for machine descriptions, used by the `--platform`
// flag on the CLI drivers. The format is a direct transcription of the
// Machine struct:
//
//   {
//     "fabric": { "bytes_per_s": 1.25e9, "latency_s": 1e-6 },
//     "groups": [
//       { "name": "cluster", "nodes": 64,
//         "sockets_per_node": 1, "cores_per_socket": 1,
//         "core_gflops": 10.0, "core_clock_states": [1.0, 1.2],
//         "l3":     { "bytes_per_s": ..., "latency_s": ... },
//         "membus": { "bytes_per_s": ..., "latency_s": ... },
//         "upi":    { ... },        // optional when sockets_per_node == 1
//         "nic":    { ... },
//         "uplink": { ... } }       // optional; absent = direct to fabric
//     ]
//   }
//
// Parsing is strict: unknown keys, wrong types, and structurally invalid
// machines (Machine::validate) all throw peachy::Error with context.
#pragma once

#include <string>

#include "core/json.hpp"
#include "machine/machine.hpp"

namespace peachy::machine {

json::Value to_json(const Machine& m);
Machine machine_from_json(const json::Value& v);

/// Serializes with 2-space indentation (canonical key order).
std::string dump_machine(const Machine& m);
/// Parses and validates; throws peachy::Error on malformed text.
Machine parse_machine(const std::string& text);

/// File variants; load throws on I/O errors too.
Machine load_machine(const std::string& path);
void save_machine(const Machine& m, const std::string& path);

}  // namespace peachy::machine
