#include "machine/simulate.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "core/error.hpp"
#include "sim/engine.hpp"

namespace peachy::machine {
namespace {

constexpr double kGiga = 1e9;

struct EdgeState {
  int active = 0;
  double bytes = 0.0;
  double busy_s = 0.0;
  double busy_since = 0.0;  // valid while active > 0
};

struct FlowState {
  Route route;
  double remaining = 0.0;
  double rate = 0.0;
  double last_update = 0.0;
  bool active = false;
  bool done = false;
};

class Simulation {
 public:
  Simulation(const Machine& m, const Dag& dag) : m_(m), dag_(dag) {}

  Report run() {
    validate();
    const std::size_t nt = dag_.tasks.size();
    const std::size_t nx = dag_.transfers.size();
    pending_.assign(nt, 0);
    finished_.assign(nt, false);
    report_.task_start_s.assign(nt, -1.0);
    report_.task_finish_s.assign(nt, -1.0);
    report_.transfer_start_s.assign(nx, -1.0);
    report_.transfer_finish_s.assign(nx, -1.0);

    flows_.resize(nx);
    out_transfers_.assign(nt, {});
    dependents_.assign(nt, {});
    for (std::size_t i = 0; i < nx; ++i) {
      const Transfer& x = dag_.transfers[static_cast<std::size_t>(i)];
      flows_[i].route = route(m_, dag_.tasks[static_cast<std::size_t>(x.src)].core,
                              dag_.tasks[static_cast<std::size_t>(x.dst)].core);
      flows_[i].remaining = x.bytes;
      out_transfers_[static_cast<std::size_t>(x.src)].push_back(
          static_cast<int>(i));
      ++pending_[static_cast<std::size_t>(x.dst)];
    }
    for (std::size_t t = 0; t < nt; ++t) {
      for (int d : dag_.tasks[t].deps) {
        dependents_[static_cast<std::size_t>(d)].push_back(static_cast<int>(t));
        ++pending_[t];
      }
    }
    for (std::size_t t = 0; t < nt; ++t)
      if (pending_[t] == 0) ready(static_cast<int>(t));

    engine_.run();

    for (std::size_t t = 0; t < nt; ++t)
      PEACHY_REQUIRE(finished_[t],
                     "task " << t << " never became ready — cyclic or "
                                     "unsatisfiable dependencies");
    for (const auto& [edge, st] : edge_states_) {
      PEACHY_CHECK(st.active == 0);
      report_.edges.push_back({edge, st.bytes, st.busy_s});
    }
    for (double f : report_.task_finish_s)
      report_.makespan_s = std::max(report_.makespan_s, f);
    for (double f : report_.transfer_finish_s)
      report_.makespan_s = std::max(report_.makespan_s, f);
    return std::move(report_);
  }

 private:
  using CoreKey = std::tuple<int, int, int, int>;

  static CoreKey key(const CoreId& c) {
    return {c.group, c.node, c.socket, c.core};
  }

  void validate() const {
    m_.validate();
    const int nt = static_cast<int>(dag_.tasks.size());
    for (const Task& t : dag_.tasks) {
      PEACHY_REQUIRE(t.flops >= 0.0, "task flops must be non-negative");
      check_core(m_, t.core);
      for (int d : t.deps)
        PEACHY_REQUIRE(d >= 0 && d < nt, "task dep " << d << " out of range");
    }
    for (const Transfer& x : dag_.transfers) {
      PEACHY_REQUIRE(x.src >= 0 && x.src < nt,
                     "transfer src " << x.src << " out of range");
      PEACHY_REQUIRE(x.dst >= 0 && x.dst < nt,
                     "transfer dst " << x.dst << " out of range");
      PEACHY_REQUIRE(x.src != x.dst, "transfer src == dst");
      PEACHY_REQUIRE(x.bytes >= 0.0, "transfer bytes must be non-negative");
    }
  }

  // Task `t` has all inputs; queue it FIFO on its core.
  void ready(int t) {
    const Task& task = dag_.tasks[static_cast<std::size_t>(t)];
    const NodeGroup& g = m_.groups[static_cast<std::size_t>(task.core.group)];
    double& free_at = core_free_[key(task.core)];
    const double start = std::max(engine_.now(), free_at);
    const double dur = task.flops / (g.gflops_at() * kGiga);
    free_at = start + dur;
    report_.task_start_s[static_cast<std::size_t>(t)] = start;
    engine_.schedule_at(start + dur, [this, t] { finish_task(t); });
  }

  void finish_task(int t) {
    finished_[static_cast<std::size_t>(t)] = true;
    report_.task_finish_s[static_cast<std::size_t>(t)] = engine_.now();
    for (int d : dependents_[static_cast<std::size_t>(t)])
      if (--pending_[static_cast<std::size_t>(d)] == 0) ready(d);
    for (int x : out_transfers_[static_cast<std::size_t>(t)]) start_transfer(x);
  }

  void start_transfer(int x) {
    FlowState& f = flows_[static_cast<std::size_t>(x)];
    report_.transfer_start_s[static_cast<std::size_t>(x)] = engine_.now();
    if (f.route.edges.empty() || f.remaining <= 0.0) {
      // Same-core (or empty) transfers still pay the route latency, nothing
      // else; zero-byte transfers are pure latency signals.
      engine_.schedule_in(f.route.latency_s, [this, x] { finish_transfer(x); });
      return;
    }
    engine_.schedule_in(f.route.latency_s, [this, x] { activate_flow(x); });
  }

  void activate_flow(int x) {
    FlowState& f = flows_[static_cast<std::size_t>(x)];
    f.active = true;
    f.last_update = engine_.now();
    for (const EdgeRef& e : f.route.edges) {
      EdgeState& st = edge_states_[e];
      if (st.active++ == 0) st.busy_since = engine_.now();
    }
    recompute_rates();
  }

  void finish_transfer(int x) {
    const Transfer& t = dag_.transfers[static_cast<std::size_t>(x)];
    report_.transfer_finish_s[static_cast<std::size_t>(x)] = engine_.now();
    if (--pending_[static_cast<std::size_t>(t.dst)] == 0) ready(t.dst);
  }

  void complete_flow(int x) {
    FlowState& f = flows_[static_cast<std::size_t>(x)];
    f.active = false;
    f.done = true;
    f.remaining = 0.0;
    for (const EdgeRef& e : f.route.edges) {
      EdgeState& st = edge_states_[e];
      st.bytes += dag_.transfers[static_cast<std::size_t>(x)].bytes;
      if (--st.active == 0) st.busy_s += engine_.now() - st.busy_since;
    }
    finish_transfer(x);
    recompute_rates();
  }

  // The fair-share step: advance every active flow to `now`, re-derive its
  // rate from current edge occupancy, and (re)schedule its completion. Stale
  // completion events are invalidated by the epoch stamp.
  void recompute_rates() {
    const double now = engine_.now();
    ++epoch_;
    for (std::size_t x = 0; x < flows_.size(); ++x) {
      FlowState& f = flows_[x];
      if (!f.active) continue;
      f.remaining = std::max(0.0, f.remaining - f.rate * (now - f.last_update));
      f.last_update = now;
      double rate = f.route.min_bytes_per_s;
      for (const EdgeRef& e : f.route.edges) {
        const EdgeState& st = edge_states_[e];
        rate = std::min(rate, edge_spec(m_, e).bytes_per_s / st.active);
      }
      f.rate = rate;
      const double eta = f.remaining / rate;
      const std::uint64_t stamp = epoch_;
      engine_.schedule_in(eta, [this, x, stamp] {
        if (stamp != epoch_) return;  // superseded by a later recompute
        complete_flow(static_cast<int>(x));
      });
    }
  }

  const Machine& m_;
  const Dag& dag_;
  sim::Engine engine_;
  Report report_;

  std::vector<int> pending_;
  std::vector<char> finished_;
  std::vector<std::vector<int>> dependents_;
  std::vector<std::vector<int>> out_transfers_;
  std::vector<FlowState> flows_;
  std::map<CoreKey, double> core_free_;
  std::map<EdgeRef, EdgeState> edge_states_;
  std::uint64_t epoch_ = 0;
};

}  // namespace

Report simulate(const Machine& m, const Dag& dag) {
  return Simulation(m, dag).run();
}

}  // namespace peachy::machine
