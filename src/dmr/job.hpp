// dmr — distributed MapReduce over the mpp/net stack (DESIGN.md
// "Distributed MapReduce").
//
// The in-process engine (mapreduce/job.hpp) fans a job out over threads;
// this engine fans the *same job* out over ranks — threads, loopback
// sockets, or forked worker processes, whichever substrate
// mpp::RunOptions selects — the shape a real Hadoop deployment takes.
// Execution per rank:
//
//   1. map      — global splits are dealt round-robin to ranks; each rank
//                 maps its splits (map_workers threads) and runs the
//                 combiner per task, exactly like mr::Job.
//   2. shuffle  — intermediate records are hash-partitioned; partition p
//                 lives on rank p mod R. Each epoch ends with an
//                 all-to-all exchange of framed record blocks over the
//                 transport (one length-prefixed message per peer).
//   3. sort     — every rank feeds received records into per-partition
//                 external sorters: bounded in-memory buffers that spill
//                 sorted run files to disk, k-way merged at reduce — so a
//                 shuffle larger than memory still completes.
//   4. reduce   — each rank reduces its partitions (reduce_workers
//                 threads) streaming groups off the merge; rank 0 gathers
//                 per-partition outputs in partition order.
//
// Determinism: records are ordered by (partition, key, map task, emit
// seq); keys are compared with K2's operator< after decode, and the
// (task, seq) tie-break reproduces mr::Job's (map task, emit order) value
// ordering — so for the same JobConfig-shaped knobs (map_tasks,
// partitions, combiner) the output is byte-identical to the in-process
// engine, for any rank/worker count and any transport. Tests assert it.
//
// Fault tolerance: the unit of recovery is the *world*, not the task
// (mr::Job's per-task retries stay an in-process feature). Map progress
// is cut into epochs; after each exchanged epoch a rank can checkpoint
// its received-so-far record set through Comm::checkpoint. When a rank
// dies mid-shuffle (PeerDied, severed link, killed process), the PR-4
// supervisor respawns the world and the body restores the last committed
// epoch — the shuffle restarts from there instead of from scratch.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "dmr/codec.hpp"
#include "dmr/sorter.hpp"
#include "dmr/spill.hpp"
#include "mapreduce/job.hpp"
#include "mpp/mpp.hpp"
#include "obs/obs.hpp"

namespace peachy::dmr {

/// Defaults chosen independent of the rank count on purpose: a job's
/// output is a function of (input, map_tasks, partitions), so defaults
/// tied to ranks would silently change the result between world sizes.
inline constexpr int kDefaultMapTasks = 16;
inline constexpr int kDefaultPartitions = 8;

/// Distributed execution knobs.
struct Options {
  int ranks = 2;             ///< world size (>= 1)
  mpp::RunOptions run;       ///< transport | spawn | faults | resilience
  int map_workers = 1;       ///< map threads per rank
  int reduce_workers = 1;    ///< reduce threads per rank
  int map_tasks = 0;         ///< global input splits; 0 = kDefaultMapTasks
  int partitions = 0;        ///< reduce partitions; 0 = kDefaultPartitions
  /// Map progress is cut into this many shuffle epochs; an epoch is the
  /// checkpoint/restart granularity (1 = single monolithic shuffle).
  int map_epochs = 1;
  /// Checkpoint after every N committed epochs (0 = never). Requires a
  /// checkpoint directory: run supervised (run.resilience.max_restarts >
  /// 0) or name run.resilience.checkpoint_dir.
  int checkpoint_every = 0;
  /// Per-rank cap on the external sorters' in-memory buffers, split
  /// evenly across the rank's partitions. 0 = unbounded (never spills).
  std::size_t spill_buffer_bytes = 0;
  /// Base directory for spill runs ("" = a private mkdtemp per rank,
  /// removed when the job ends).
  std::string spill_dir;
  /// Cooperative cancellation probe, polled by rank 0 at every epoch
  /// barrier (right after the all-to-all exchange) and broadcast to the
  /// world, so all ranks abandon the job at the same cut. An aborted job
  /// skips the remaining epochs and the reduce, returns an empty output
  /// with Result::aborted set, and leaves committed checkpoints in place.
  /// Must be identical on every rank (it is part of the SPMD body).
  std::function<bool()> should_abort;
  /// Optional partition -> owning-rank map, e.g. from
  /// machine::PlacementAdvisor fed with the job's partition-traffic
  /// profile. Empty = the static default (partition p on rank p % R).
  /// When set it must have exactly `partitions` entries, each in
  /// [0, ranks). The mapping only moves where partitions are reduced;
  /// output stays byte-identical (records are assembled in partition
  /// order regardless of ownership). Must be identical on every rank.
  std::vector<int> partition_owner;
};

/// Aggregate counters over all ranks (the distributed JobCounters).
struct Counters {
  std::size_t map_inputs = 0;
  std::size_t map_outputs = 0;
  std::size_t combine_outputs = 0;
  std::size_t shuffle_records = 0;  ///< records routed into partitions
  std::size_t shuffle_bytes = 0;    ///< framed bytes sent rank-to-rank
  std::size_t local_bytes = 0;      ///< framed bytes that stayed local
  std::size_t groups = 0;
  std::size_t reduce_outputs = 0;
  SpillStats spill;                 ///< external-sort spill accounting
  /// Records per partition (index = partition id) — the skew profile.
  std::vector<std::size_t> partition_records;
  int epochs = 0;                   ///< map epochs executed (any attempt)
};

/// What a distributed job run produced.
template <typename K3, typename V3>
struct Result {
  std::vector<std::pair<K3, V3>> output;
  Counters counters;
  mpp::CommStats comm;
  mpp::NetStats net;
  int restarts = 0;    ///< supervised world restarts (0 = clean run)
  bool aborted = false;  ///< Options::should_abort fired mid-run
  /// Largest per-worker RSS peak (bytes); spawned transports only.
  std::uint64_t peak_rss_bytes = 0;
};

namespace detail {

/// Runs fn(0..n-1) on up to `workers` plain threads (not the TaskArena:
/// dmr bodies execute inside forked worker processes, where the shared
/// arena's threads would not exist). Rethrows the first failure.
inline void run_indexed(std::size_t n, int workers,
                        const std::function<void(std::size_t)>& fn) {
  const std::size_t w =
      std::min<std::size_t>(n, static_cast<std::size_t>(std::max(1, workers)));
  if (w <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::exception_ptr error;
  std::vector<std::thread> threads;
  threads.reserve(w);
  for (std::size_t t = 0; t < w; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(mu);
          if (!error) error = std::current_exception();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

inline void put_u32(std::uint32_t v, std::vector<std::byte>& out) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

inline void put_u64(std::uint64_t v, std::vector<std::byte>& out) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

inline std::uint32_t take_u32(const std::vector<std::byte>& buf,
                              std::size_t& pos) {
  PEACHY_REQUIRE(buf.size() - pos >= 4, "dmr blob truncated reading u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(buf[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  pos += 4;
  return v;
}

inline std::uint64_t take_u64(const std::vector<std::byte>& buf,
                              std::size_t& pos) {
  PEACHY_REQUIRE(buf.size() - pos >= 8, "dmr blob truncated reading u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(buf[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  pos += 8;
  return v;
}

/// Per-rank counter block shipped to rank 0 with the outputs. Fixed-width
/// so it frames trivially.
struct RankCounters {
  std::uint64_t map_outputs = 0;
  std::uint64_t combine_outputs = 0;
  std::uint64_t shuffle_records = 0;
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t local_bytes = 0;
  std::uint64_t groups = 0;
  std::uint64_t reduce_outputs = 0;
  std::uint64_t spills = 0;
  std::uint64_t spilled_records = 0;
  std::uint64_t spilled_bytes = 0;
  std::uint64_t epochs = 0;
};

}  // namespace detail

/// A typed distributed MapReduce job. Same phase signatures as mr::Job;
/// K2/V2 (and K3/V3) additionally need a dmr::Codec so they can cross
/// rank boundaries and spill to disk.
template <typename K1, typename V1, typename K2, typename V2, typename K3,
          typename V3>
class Job {
 public:
  using Mapper = std::function<void(const K1&, const V1&, mr::Emitter<K2, V2>&)>;
  using Combiner = std::function<void(const K2&, const std::vector<V2>&,
                                      mr::Emitter<K2, V2>&)>;
  using Reducer = std::function<void(const K2&, const std::vector<V2>&,
                                     mr::Emitter<K3, V3>&)>;
  using Partitioner = std::function<int(const K2&, int)>;
  using ValueComparator = std::function<bool(const V2&, const V2&)>;

  Job& mapper(Mapper m) { mapper_ = std::move(m); return *this; }
  Job& combiner(Combiner c) { combiner_ = std::move(c); return *this; }
  Job& reducer(Reducer r) { reducer_ = std::move(r); return *this; }
  Job& partitioner(Partitioner p) { partitioner_ = std::move(p); return *this; }
  Job& sort_values(ValueComparator cmp) {
    value_cmp_ = std::move(cmp);
    return *this;
  }
  Job& options(Options opt) { options_ = std::move(opt); return *this; }

  /// Runs the job distributed over options().ranks ranks. Every rank must
  /// see the same `inputs` (the replicated-input model: each worker reads
  /// the same job files) — with spawned workers the vector is inherited
  /// through fork or rebuilt by the re-exec'd main on its way back here.
  Result<K3, V3> run(const std::vector<std::pair<K1, V1>>& inputs) {
    PEACHY_REQUIRE(mapper_ != nullptr, "dmr job has no mapper");
    PEACHY_REQUIRE(reducer_ != nullptr, "dmr job has no reducer");
    PEACHY_REQUIRE(options_.ranks >= 1,
                   "dmr job needs >= 1 rank, got " << options_.ranks);
    PEACHY_REQUIRE(options_.map_workers >= 1 && options_.reduce_workers >= 1,
                   "worker counts must be >= 1");
    const int splits =
        options_.map_tasks > 0 ? options_.map_tasks : kDefaultMapTasks;
    const int partitions =
        options_.partitions > 0 ? options_.partitions : kDefaultPartitions;
    const int epochs = std::max(1, options_.map_epochs);
    PEACHY_REQUIRE(options_.checkpoint_every == 0 ||
                       options_.run.resilience.max_restarts > 0 ||
                       !options_.run.resilience.checkpoint_dir.empty(),
                   "checkpoint_every needs a checkpoint directory: run "
                   "supervised or set resilience.checkpoint_dir");
    if (!options_.partition_owner.empty()) {
      PEACHY_REQUIRE(
          static_cast<int>(options_.partition_owner.size()) == partitions,
          "partition_owner has " << options_.partition_owner.size()
                                 << " entries for " << partitions
                                 << " partitions");
      for (const int owner : options_.partition_owner)
        PEACHY_REQUIRE(owner >= 0 && owner < options_.ranks,
                       "partition_owner entry " << owner
                                                << " outside [0, ranks)");
    }
    Partitioner partition =
        partitioner_ ? partitioner_ : Partitioner(mr::HashPartitioner<K2>{});

    obs::Span job_span("dmr.job", "dmr");
    job_span.arg("ranks", options_.ranks);
    job_span.arg("splits", splits);
    job_span.arg("partitions", partitions);
    job_span.arg("epochs", epochs);

    const mpp::RunOutcome outcome = mpp::run_world(
        options_.ranks, options_.run, [&](mpp::Comm& comm) {
          rank_body(comm, inputs, splits, partitions, epochs, partition);
        });

    Result<K3, V3> result = decode_result(outcome.rank0_result, partitions);
    result.counters.map_inputs = inputs.size();
    result.comm = outcome.comm;
    result.net = outcome.net;
    result.restarts = outcome.restarts;
    result.peak_rss_bytes = outcome.peak_rss_bytes;
    job_span.arg("restarts", result.restarts);
    if (obs::enabled()) {
      obs::Registry& reg = obs::Registry::global();
      reg.counter("dmr.jobs").add(1);
      reg.counter("dmr.shuffle_records").add(result.counters.shuffle_records);
      reg.counter("dmr.shuffle_bytes").add(result.counters.shuffle_bytes);
      reg.counter("dmr.spills").add(result.counters.spill.spills);
      reg.counter("dmr.spilled_bytes").add(result.counters.spill.spilled_bytes);
      obs::Histogram& skew =
          obs::Registry::global().histogram("dmr.partition_records");
      for (const std::size_t n : result.counters.partition_records)
        skew.observe(static_cast<std::int64_t>(n));
    }
    return result;
  }

 private:
  // Reserved application tags (positive, high to stay clear of user tags
  // in mixed workloads; FIFO per (src, tag) keeps epochs ordered anyway).
  static constexpr int tag_shuffle(int epoch) { return 9100 + epoch; }
  static constexpr int tag_result() { return 9050; }

  /// Owning rank of partition `p` in a world of `R` ranks.
  int owner_of(int p, int R) const {
    if (options_.partition_owner.empty()) return p % R;
    return options_.partition_owner[static_cast<std::size_t>(p)];
  }

  /// The SPMD body every rank runs.
  void rank_body(mpp::Comm& comm,
                 const std::vector<std::pair<K1, V1>>& inputs, int splits,
                 int partitions, int epochs, const Partitioner& partition) {
    const int R = comm.size();
    const int me = comm.rank();

    // Partition p lives on rank owner_of(p) — p mod R unless the job was
    // given an explicit placement; this rank's partitions ascending.
    std::vector<int> owned;
    for (int p = 0; p < partitions; ++p)
      if (owner_of(p, R) == me) owned.push_back(p);

    // One external sorter per owned partition; the per-rank spill budget
    // is split evenly across them.
    const std::size_t per_sorter_cap =
        owned.empty() ? 0
                      : options_.spill_buffer_bytes / owned.size();
    std::vector<std::unique_ptr<SpillDir>> spill_dirs;
    std::vector<std::unique_ptr<ExternalSorter<K2, V2>>> sorters;
    std::vector<int> owner_index(static_cast<std::size_t>(partitions), -1);
    for (std::size_t i = 0; i < owned.size(); ++i) {
      spill_dirs.push_back(std::make_unique<SpillDir>(
          options_.spill_dir.empty()
              ? ""
              : options_.spill_dir + "/rank" + std::to_string(me) + "-p" +
                    std::to_string(owned[i])));
      sorters.push_back(std::make_unique<ExternalSorter<K2, V2>>(
          *spill_dirs.back(), per_sorter_cap));
      owner_index[static_cast<std::size_t>(owned[i])] = static_cast<int>(i);
    }
    const auto ingest = [&](const RawRecord& rec) {
      PEACHY_REQUIRE(rec.partition < static_cast<std::uint32_t>(partitions) &&
                         owner_index[rec.partition] >= 0,
                     "rank " << me << ": received record for partition "
                             << rec.partition << " it does not own");
      sorters[static_cast<std::size_t>(owner_index[rec.partition])]->add_raw(
          rec);
    };

    detail::RankCounters rc;

    // Resume from the last committed shuffle epoch, if any: the blob is
    // [u32 next_epoch][framed records received so far].
    int start_epoch = 0;
    if (comm.checkpointing()) {
      if (auto blob = comm.restore()) {
        std::size_t pos = 0;
        start_epoch = static_cast<int>(detail::take_u32(*blob, pos));
        RawRecord rec;
        std::size_t restored = 0;
        while (read_record(*blob, pos, rec)) {
          ingest(rec);
          ++restored;
        }
        if (obs::enabled())
          obs::Tracer::global().instant(
              "dmr.restore", "dmr",
              {{"rank", me},
               {"epoch", start_epoch},
               {"records", static_cast<std::int64_t>(restored)}});
      }
    }

    // --- Map + shuffle, one epoch at a time.
    bool aborted = false;
    for (int e = start_epoch; e < epochs; ++e) {
      obs::Span epoch_span("dmr.map_epoch", "dmr");
      epoch_span.arg("rank", me);
      epoch_span.arg("epoch", e);

      // Splits of this epoch dealt round-robin to ranks.
      std::vector<int> my_tasks;
      const int ep_lo = splits * e / epochs;
      const int ep_hi = splits * (e + 1) / epochs;
      for (int s = ep_lo; s < ep_hi; ++s)
        if (s % R == me) my_tasks.push_back(s);

      // Map + combine + partition each task; outputs are framed straight
      // into per-destination blocks, kept per task so the concatenation
      // below is deterministic in task order.
      std::vector<std::vector<std::vector<std::byte>>> task_blocks(
          my_tasks.size(),
          std::vector<std::vector<std::byte>>(static_cast<std::size_t>(R)));
      std::vector<std::size_t> task_map_out(my_tasks.size(), 0);
      std::vector<std::size_t> task_comb_out(my_tasks.size(), 0);
      detail::run_indexed(
          my_tasks.size(), options_.map_workers, [&](std::size_t i) {
            const int s = my_tasks[i];
            const std::size_t lo =
                inputs.size() * static_cast<std::size_t>(s) /
                static_cast<std::size_t>(splits);
            const std::size_t hi =
                inputs.size() * (static_cast<std::size_t>(s) + 1) /
                static_cast<std::size_t>(splits);
            mr::Emitter<K2, V2> emitter;
            for (std::size_t r = lo; r < hi; ++r)
              mapper_(inputs[r].first, inputs[r].second, emitter);
            task_map_out[i] = emitter.pairs().size();
            std::vector<std::pair<K2, V2>> intermediate =
                combiner_ ? mr::detail::combine_pairs(
                                std::move(emitter.pairs()), combiner_)
                          : std::move(emitter.pairs());
            task_comb_out[i] = intermediate.size();
            RawRecord rec;
            for (std::size_t k = 0; k < intermediate.size(); ++k) {
              const int p = partition(intermediate[k].first, partitions);
              PEACHY_REQUIRE(p >= 0 && p < partitions,
                             "partitioner returned " << p << " of "
                                                     << partitions);
              rec.partition = static_cast<std::uint32_t>(p);
              rec.task = static_cast<std::uint32_t>(s);
              rec.seq = static_cast<std::uint32_t>(k);
              rec.key.clear();
              rec.value.clear();
              Codec<K2>::encode(intermediate[k].first, rec.key);
              Codec<V2>::encode(intermediate[k].second, rec.value);
              append_record(rec, task_blocks[i][static_cast<std::size_t>(
                                     owner_of(p, R))]);
            }
          });
      for (std::size_t i = 0; i < my_tasks.size(); ++i) {
        rc.map_outputs += task_map_out[i];
        rc.combine_outputs += task_comb_out[i];
      }

      // Concatenate per-destination blocks in task order.
      std::vector<std::vector<std::byte>> dest(static_cast<std::size_t>(R));
      for (std::size_t i = 0; i < my_tasks.size(); ++i)
        for (int d = 0; d < R; ++d) {
          auto& block = task_blocks[i][static_cast<std::size_t>(d)];
          dest[static_cast<std::size_t>(d)].insert(
              dest[static_cast<std::size_t>(d)].end(), block.begin(),
              block.end());
          block.clear();
          block.shrink_to_fit();
        }

      // All-to-all exchange: everyone sends first (sends never block),
      // then receives in rank order. One length-prefixed message per peer
      // per epoch, empty blocks included — the recv doubles as the epoch
      // barrier.
      obs::Span exchange_span("dmr.exchange", "dmr");
      exchange_span.arg("rank", me);
      exchange_span.arg("epoch", e);
      for (int d = 0; d < R; ++d) {
        if (d == me) continue;
        const auto& block = dest[static_cast<std::size_t>(d)];
        const std::uint64_t n = block.size();
        comm.send(d, tag_shuffle(e), &n, 1);
        // Zero-copy lane: the concatenated block goes down as a span, so
        // the tcp transport frames it with scatter-gather I/O instead of
        // copying it into another intermediate vector.
        if (n) comm.send(d, tag_shuffle(e), std::span<const std::byte>(block));
        rc.shuffle_bytes += n;
      }
      {
        std::size_t pos = 0;
        RawRecord rec;
        const auto& mine = dest[static_cast<std::size_t>(me)];
        while (read_record(mine, pos, rec)) ingest(rec);
        rc.local_bytes += mine.size();
      }
      for (int src = 0; src < R; ++src) {
        if (src == me) continue;
        std::uint64_t n = 0;
        comm.recv(src, tag_shuffle(e), &n, 1);
        std::vector<std::byte> block(n);
        if (n) comm.recv(src, tag_shuffle(e), block.data(), block.size());
        std::size_t pos = 0;
        RawRecord rec;
        while (read_record(block, pos, rec)) ingest(rec);
      }
      rc.epochs = static_cast<std::uint64_t>(e) + 1;
      exchange_span.arg("bytes_out",
                        static_cast<std::int64_t>(rc.shuffle_bytes));
      exchange_span.close();

      // Cancellation cut: the exchange recv above is the epoch barrier, so
      // every rank is at the same point. Rank 0 polls the hook once and the
      // or-reduce broadcasts the verdict — all ranks abandon together (same
      // shape as the sandpile's abort poll). Committed checkpoints stay.
      if (options_.should_abort) {
        const bool mine = me == 0 && options_.should_abort();
        if (comm.allreduce_or(mine)) {
          aborted = true;
          if (obs::enabled())
            obs::Tracer::global().instant("dmr.abort", "dmr",
                                          {{"rank", me}, {"epoch", e}});
          break;
        }
      }

      // Commit the epoch: every rank's received-so-far record set becomes
      // the restart point. The exchange recv above is the all-ranks-agree
      // cut the checkpoint collective needs.
      if (comm.checkpointing() && options_.checkpoint_every > 0 &&
          (e + 1) % options_.checkpoint_every == 0 && e + 1 < epochs) {
        std::vector<std::byte> blob;
        detail::put_u32(static_cast<std::uint32_t>(e) + 1, blob);
        for (const auto& sorter : sorters)
          sorter->snapshot(
              [&blob](const RawRecord& rec) { append_record(rec, blob); });
        comm.checkpoint(blob.data(), blob.size());
      }
    }

    // --- Reduce: each owned partition streams groups off its merge. An
    // aborted job skips it — the collect below still runs so rank 0 can
    // assemble the (empty, aborted-flagged) result every rank agrees on.
    std::vector<std::vector<std::pair<K3, V3>>> part_out(owned.size());
    std::vector<std::size_t> part_groups(owned.size(), 0);
    std::vector<std::size_t> part_records(owned.size(), 0);
    if (!aborted)
      detail::run_indexed(
        owned.size(), options_.reduce_workers, [&](std::size_t i) {
          obs::Span reduce_span("dmr.reduce_partition", "dmr");
          reduce_span.arg("rank", me);
          reduce_span.arg("partition", owned[i]);
          ExternalSorter<K2, V2>& sorter = *sorters[i];
          part_records[i] = sorter.total_records();
          mr::Emitter<K3, V3> emitter;
          bool open = false;
          K2 current_key{};
          std::vector<V2> values;
          const auto flush = [&] {
            if (!open) return;
            if (value_cmp_)
              std::stable_sort(values.begin(), values.end(), value_cmp_);
            reducer_(current_key, values, emitter);
            ++part_groups[i];
            values.clear();
          };
          sorter.stream([&](std::uint32_t, const K2& key, V2& value,
                            std::uint32_t) {
            if (!open || current_key < key || key < current_key) {
              flush();
              current_key = key;
              open = true;
            }
            values.push_back(std::move(value));
          });
          flush();
          part_out[i] = std::move(emitter.pairs());
          reduce_span.arg("groups",
                          static_cast<std::int64_t>(part_groups[i]));
        });
    for (std::size_t i = 0; i < owned.size(); ++i) {
      rc.shuffle_records += part_records[i];
      rc.groups += part_groups[i];
      rc.reduce_outputs += part_out[i].size();
    }
    for (const auto& sorter : sorters) {
      rc.spills += sorter->stats().spills;
      rc.spilled_records += sorter->stats().spilled_records;
      rc.spilled_bytes += sorter->stats().spilled_bytes;
    }

    // --- Collect at rank 0: each rank ships one blob of [counters]
    // [per-partition outputs]; rank 0 assembles the result in partition
    // order and stashes it for the launcher.
    std::vector<std::byte> mine;
    encode_rank_blob(rc, owned, part_records, part_out, mine);
    if (me != 0) {
      const std::uint64_t n = mine.size();
      comm.send(0, tag_result(), &n, 1);
      if (n) comm.send(0, tag_result(), std::span<const std::byte>(mine));
      return;
    }
    std::vector<std::vector<std::byte>> rank_blobs(
        static_cast<std::size_t>(R));
    rank_blobs[0] = std::move(mine);
    for (int src = 1; src < R; ++src) {
      std::uint64_t n = 0;
      comm.recv(src, tag_result(), &n, 1);
      rank_blobs[static_cast<std::size_t>(src)].resize(n);
      if (n)
        comm.recv(src, tag_result(),
                  rank_blobs[static_cast<std::size_t>(src)].data(), n);
    }
    std::vector<std::byte> result_blob;
    detail::put_u32(aborted ? 1 : 0, result_blob);
    const std::vector<std::byte> assembled =
        assemble_result(rank_blobs, partitions);
    result_blob.insert(result_blob.end(), assembled.begin(), assembled.end());
    comm.set_result(result_blob.data(), result_blob.size());
  }

  /// Rank blob layout: [11 x u64 counters][u32 owned_count]
  /// ([u32 partition][u64 records_in][u64 out_count] framed outputs)*.
  static void encode_rank_blob(
      const detail::RankCounters& rc, const std::vector<int>& owned,
      const std::vector<std::size_t>& part_records,
      const std::vector<std::vector<std::pair<K3, V3>>>& part_out,
      std::vector<std::byte>& out) {
    for (const std::uint64_t v :
         {rc.map_outputs, rc.combine_outputs, rc.shuffle_records,
          rc.shuffle_bytes, rc.local_bytes, rc.groups, rc.reduce_outputs,
          rc.spills, rc.spilled_records, rc.spilled_bytes, rc.epochs})
      detail::put_u64(v, out);
    detail::put_u32(static_cast<std::uint32_t>(owned.size()), out);
    RawRecord rec;
    for (std::size_t i = 0; i < owned.size(); ++i) {
      detail::put_u32(static_cast<std::uint32_t>(owned[i]), out);
      detail::put_u64(part_records[i], out);
      detail::put_u64(part_out[i].size(), out);
      for (std::size_t k = 0; k < part_out[i].size(); ++k) {
        rec.partition = static_cast<std::uint32_t>(owned[i]);
        rec.task = 0;
        rec.seq = static_cast<std::uint32_t>(k);
        rec.key.clear();
        rec.value.clear();
        Codec<K3>::encode(part_out[i][k].first, rec.key);
        Codec<V3>::encode(part_out[i][k].second, rec.value);
        append_record(rec, out);
      }
    }
  }

  /// Merges every rank's blob into the final result blob rank 0 stashes:
  /// [11 x u64 summed counters][u32 partitions][u64 records_in per
  /// partition][u64 total outputs][framed outputs in partition order].
  static std::vector<std::byte> assemble_result(
      const std::vector<std::vector<std::byte>>& rank_blobs, int partitions) {
    detail::RankCounters total;
    std::vector<std::uint64_t> per_partition(
        static_cast<std::size_t>(partitions), 0);
    std::vector<std::vector<std::byte>> outputs(
        static_cast<std::size_t>(partitions));
    std::vector<std::uint64_t> out_counts(
        static_cast<std::size_t>(partitions), 0);
    for (const auto& blob : rank_blobs) {
      std::size_t pos = 0;
      std::uint64_t* const fields[] = {
          &total.map_outputs, &total.combine_outputs, &total.shuffle_records,
          &total.shuffle_bytes, &total.local_bytes, &total.groups,
          &total.reduce_outputs, &total.spills, &total.spilled_records,
          &total.spilled_bytes, &total.epochs};
      for (std::uint64_t* f : fields) {
        const std::uint64_t v = detail::take_u64(blob, pos);
        // Epochs agree on every rank; everything else sums.
        if (f == &total.epochs)
          *f = std::max(*f, v);
        else
          *f += v;
      }
      const std::uint32_t owned_count = detail::take_u32(blob, pos);
      RawRecord rec;
      for (std::uint32_t i = 0; i < owned_count; ++i) {
        const std::uint32_t p = detail::take_u32(blob, pos);
        PEACHY_REQUIRE(p < per_partition.size(),
                       "result blob names partition " << p << " of "
                                                      << partitions);
        per_partition[p] = detail::take_u64(blob, pos);
        const std::uint64_t n = detail::take_u64(blob, pos);
        out_counts[p] = n;
        for (std::uint64_t k = 0; k < n; ++k) {
          PEACHY_REQUIRE(read_record(blob, pos, rec),
                         "result blob truncated mid-partition");
          append_record(rec, outputs[p]);
        }
      }
    }
    std::vector<std::byte> out;
    for (const std::uint64_t v :
         {total.map_outputs, total.combine_outputs, total.shuffle_records,
          total.shuffle_bytes, total.local_bytes, total.groups,
          total.reduce_outputs, total.spills, total.spilled_records,
          total.spilled_bytes, total.epochs})
      detail::put_u64(v, out);
    detail::put_u32(static_cast<std::uint32_t>(partitions), out);
    for (const std::uint64_t n : per_partition) detail::put_u64(n, out);
    std::uint64_t total_outputs = 0;
    for (const std::uint64_t n : out_counts) total_outputs += n;
    detail::put_u64(total_outputs, out);
    for (const auto& part : outputs)
      out.insert(out.end(), part.begin(), part.end());
    return out;
  }

  /// Decodes the blob rank 0 stashed into the caller-facing Result.
  static Result<K3, V3> decode_result(const std::vector<std::byte>& blob,
                                      int partitions) {
    PEACHY_REQUIRE(!blob.empty(),
                   "dmr job produced no result blob (rank 0 died?)");
    Result<K3, V3> result;
    std::size_t pos = 0;
    result.aborted = detail::take_u32(blob, pos) != 0;
    detail::RankCounters total;
    std::uint64_t* const fields[] = {
        &total.map_outputs, &total.combine_outputs, &total.shuffle_records,
        &total.shuffle_bytes, &total.local_bytes, &total.groups,
        &total.reduce_outputs, &total.spills, &total.spilled_records,
        &total.spilled_bytes, &total.epochs};
    for (std::uint64_t* f : fields) *f = detail::take_u64(blob, pos);
    const std::uint32_t p_count = detail::take_u32(blob, pos);
    PEACHY_REQUIRE(p_count == static_cast<std::uint32_t>(partitions),
                   "result blob has " << p_count << " partitions, expected "
                                      << partitions);
    result.counters.partition_records.resize(p_count);
    for (std::uint32_t p = 0; p < p_count; ++p)
      result.counters.partition_records[p] =
          static_cast<std::size_t>(detail::take_u64(blob, pos));
    const std::uint64_t n = detail::take_u64(blob, pos);
    result.output.reserve(n);
    RawRecord rec;
    for (std::uint64_t k = 0; k < n; ++k) {
      PEACHY_REQUIRE(read_record(blob, pos, rec),
                     "result blob truncated mid-output");
      result.output.emplace_back(
          Codec<K3>::decode(rec.key.data(), rec.key.size()),
          Codec<V3>::decode(rec.value.data(), rec.value.size()));
    }
    result.counters.map_outputs = total.map_outputs;
    result.counters.combine_outputs = total.combine_outputs;
    result.counters.shuffle_records = total.shuffle_records;
    result.counters.shuffle_bytes = total.shuffle_bytes;
    result.counters.local_bytes = total.local_bytes;
    result.counters.groups = total.groups;
    result.counters.reduce_outputs = total.reduce_outputs;
    result.counters.spill.spills = total.spills;
    result.counters.spill.spilled_records = total.spilled_records;
    result.counters.spill.spilled_bytes = total.spilled_bytes;
    result.counters.epochs = static_cast<int>(total.epochs);
    return result;
  }

  Mapper mapper_;
  Combiner combiner_;
  Reducer reducer_;
  Partitioner partitioner_;
  ValueComparator value_cmp_;
  Options options_;
};

}  // namespace peachy::dmr
