#include "dmr/spill.hpp"

#include <stdlib.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "core/error.hpp"

namespace peachy::dmr {

namespace {

void put_u32(std::uint32_t v, std::vector<std::byte>& out) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void append_record(const RawRecord& rec, std::vector<std::byte>& out) {
  out.reserve(out.size() + rec.framed_bytes());
  put_u32(rec.partition, out);
  put_u32(rec.task, out);
  put_u32(rec.seq, out);
  put_u32(static_cast<std::uint32_t>(rec.key.size()), out);
  put_u32(static_cast<std::uint32_t>(rec.value.size()), out);
  out.insert(out.end(), rec.key.begin(), rec.key.end());
  out.insert(out.end(), rec.value.begin(), rec.value.end());
}

bool read_record(const std::vector<std::byte>& buf, std::size_t& pos,
                 RawRecord& rec) {
  if (pos == buf.size()) return false;
  PEACHY_REQUIRE(buf.size() - pos >= 20,
                 "dmr record frame truncated: " << buf.size() - pos
                                                << " bytes left, need 20");
  const std::byte* p = buf.data() + pos;
  rec.partition = get_u32(p);
  rec.task = get_u32(p + 4);
  rec.seq = get_u32(p + 8);
  const std::uint32_t key_len = get_u32(p + 12);
  const std::uint32_t val_len = get_u32(p + 16);
  PEACHY_REQUIRE(buf.size() - pos - 20 >= key_len + std::size_t{val_len},
                 "dmr record payload truncated: need "
                     << key_len + std::size_t{val_len} << " bytes, have "
                     << buf.size() - pos - 20);
  rec.key.assign(p + 20, p + 20 + key_len);
  rec.value.assign(p + 20 + key_len, p + 20 + key_len + val_len);
  pos += 20 + key_len + std::size_t{val_len};
  return true;
}

RunWriter::RunWriter(const std::string& path)
    : os_(path, std::ios::binary | std::ios::trunc), path_(path) {
  PEACHY_REQUIRE(os_.good(), "cannot create spill run " << path);
}

void RunWriter::write(const RawRecord& rec) {
  std::vector<std::byte> frame;
  append_record(rec, frame);
  os_.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
  ++records_;
  bytes_ += frame.size();
}

void RunWriter::close() {
  os_.flush();
  PEACHY_REQUIRE(os_.good(), "spill run write failed: " << path_);
  os_.close();
}

RunReader::RunReader(const std::string& path)
    : is_(path, std::ios::binary), path_(path) {
  PEACHY_REQUIRE(is_.good(), "cannot open spill run " << path);
}

bool RunReader::next(RawRecord& rec) {
  char header[20];
  is_.read(header, sizeof header);
  if (is_.gcount() == 0 && is_.eof()) return false;
  PEACHY_REQUIRE(is_.gcount() == sizeof header,
                 "spill run " << path_ << " torn mid-header");
  const auto* h = reinterpret_cast<const std::byte*>(header);
  rec.partition = get_u32(h);
  rec.task = get_u32(h + 4);
  rec.seq = get_u32(h + 8);
  const std::uint32_t key_len = get_u32(h + 12);
  const std::uint32_t val_len = get_u32(h + 16);
  rec.key.resize(key_len);
  rec.value.resize(val_len);
  if (key_len) {
    is_.read(reinterpret_cast<char*>(rec.key.data()), key_len);
    PEACHY_REQUIRE(is_.gcount() == static_cast<std::streamsize>(key_len),
                   "spill run " << path_ << " torn mid-key");
  }
  if (val_len) {
    is_.read(reinterpret_cast<char*>(rec.value.data()), val_len);
    PEACHY_REQUIRE(is_.gcount() == static_cast<std::streamsize>(val_len),
                   "spill run " << path_ << " torn mid-value");
  }
  return true;
}

SpillDir::SpillDir(const std::string& hint) {
  if (!hint.empty()) {
    path_ = hint;
    std::filesystem::create_directories(path_);
    return;
  }
  char tmpl[] = "/tmp/peachy-dmr-XXXXXX";
  PEACHY_REQUIRE(::mkdtemp(tmpl) != nullptr,
                 "mkdtemp failed: " << std::strerror(errno));
  path_ = tmpl;
  owned_ = true;
}

SpillDir::~SpillDir() {
  if (owned_) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
}

std::string SpillDir::run_path(std::size_t n) const {
  return path_ + "/run-" + std::to_string(n) + ".spill";
}

}  // namespace peachy::dmr
