// Spill-to-disk external sort for the dmr shuffle (DESIGN.md "Distributed
// MapReduce").
//
// A rank's reducer input — every shuffle record whose partition it owns —
// may not fit in memory. The sorter accumulates typed records in a bounded
// in-memory buffer; when the buffer's byte footprint exceeds the cap it is
// sorted by (partition, key, task, seq) and written out as one sorted run
// file. stream() k-way merges the run files with the final in-memory
// buffer, so records come out in globally sorted order using bounded
// memory (one head record per run).
//
// Ordering: keys are decoded and compared with K's operator< — the same
// comparison the single-process mr::Job uses — and ties break by (task,
// seq), i.e. (map task, emit order). The merged stream therefore groups
// and orders records exactly like mr::Job's in-memory merge, which is what
// makes distributed output byte-identical to the single-process engine.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "dmr/codec.hpp"
#include "dmr/spill.hpp"

namespace peachy::dmr {

/// Spill accounting for one sorter (surfaced in dmr::Counters).
struct SpillStats {
  std::size_t spills = 0;           ///< sorted run files written
  std::size_t spilled_records = 0;  ///< records that hit disk
  std::size_t spilled_bytes = 0;    ///< framed bytes written to runs
};

template <typename K, typename V>
class ExternalSorter {
 public:
  /// One buffered shuffle record (typed; encoded only when spilled).
  struct Record {
    std::uint32_t partition;
    std::uint32_t task;
    std::uint32_t seq;
    K key;
    V value;
  };

  /// `dir` owns the run files; `buffer_cap_bytes` bounds the in-memory
  /// buffer (0 = unbounded, never spills).
  ExternalSorter(const SpillDir& dir, std::size_t buffer_cap_bytes)
      : dir_(dir), cap_(buffer_cap_bytes) {}

  void add(std::uint32_t partition, K key, V value, std::uint32_t task,
           std::uint32_t seq) {
    buffered_bytes_ += 20 + byte_size(key) + byte_size(value);
    buffer_.push_back(
        Record{partition, task, seq, std::move(key), std::move(value)});
    ++total_records_;
    if (cap_ > 0 && buffered_bytes_ > cap_) spill();
  }

  /// Re-adds an encoded record (checkpoint restore path).
  void add_raw(const RawRecord& raw) {
    add(raw.partition, Codec<K>::decode(raw.key.data(), raw.key.size()),
        Codec<V>::decode(raw.value.data(), raw.value.size()), raw.task,
        raw.seq);
  }

  std::size_t total_records() const { return total_records_; }
  const SpillStats& stats() const { return stats_; }

  /// Streams every record in arbitrary order (checkpoint encoding: the
  /// sort is total, so restore order does not matter). Readable while
  /// buffered; must not be called after stream().
  void snapshot(const std::function<void(const RawRecord&)>& fn) const {
    for (std::size_t r = 0; r < runs_; ++r) {
      RunReader reader(dir_.run_path(r));
      RawRecord rec;
      while (reader.next(rec)) fn(rec);
    }
    RawRecord rec;
    for (const Record& b : buffer_) {
      encode(b, rec);
      fn(rec);
    }
  }

  /// Sorts what is still buffered and merges it with every spilled run,
  /// invoking `fn` once per record in (partition, key, task, seq) order.
  /// Consumes the sorter.
  void stream(
      const std::function<void(std::uint32_t partition, const K& key,
                               V& value, std::uint32_t task)>& fn) {
    sort_buffer();

    // One cursor per source: each spilled run plus the final buffer.
    struct Cursor {
      std::unique_ptr<RunReader> reader;  // nullptr = the in-memory buffer
      Record head;
      bool alive = false;
    };
    const auto advance = [](Cursor& c) {
      RawRecord raw;
      if (!c.reader->next(raw)) return false;
      c.head.partition = raw.partition;
      c.head.task = raw.task;
      c.head.seq = raw.seq;
      c.head.key = Codec<K>::decode(raw.key.data(), raw.key.size());
      c.head.value = Codec<V>::decode(raw.value.data(), raw.value.size());
      return true;
    };
    std::vector<Cursor> cursors(runs_ + 1);
    for (std::size_t r = 0; r < runs_; ++r) {
      cursors[r].reader = std::make_unique<RunReader>(dir_.run_path(r));
      cursors[r].alive = advance(cursors[r]);
    }
    std::size_t buffer_pos = 0;
    Cursor& mem = cursors[runs_];
    if (buffer_pos < buffer_.size()) {
      mem.head = std::move(buffer_[buffer_pos++]);
      mem.alive = true;
    }

    std::size_t emitted = 0;
    while (true) {
      Cursor* best = nullptr;
      for (Cursor& c : cursors)
        if (c.alive && (best == nullptr || before(c.head, best->head)))
          best = &c;
      if (best == nullptr) break;
      fn(best->head.partition, best->head.key, best->head.value,
         best->head.task);
      ++emitted;
      if (best->reader) {
        best->alive = advance(*best);
      } else if (buffer_pos < buffer_.size()) {
        best->head = std::move(buffer_[buffer_pos++]);
      } else {
        best->alive = false;
      }
    }
    PEACHY_CHECK(emitted == total_records_);
  }

 private:
  static bool before(const Record& a, const Record& b) {
    if (a.partition != b.partition) return a.partition < b.partition;
    if (a.key < b.key) return true;
    if (b.key < a.key) return false;
    if (a.task != b.task) return a.task < b.task;
    return a.seq < b.seq;
  }

  static void encode(const Record& rec, RawRecord& out) {
    out.partition = rec.partition;
    out.task = rec.task;
    out.seq = rec.seq;
    out.key.clear();
    out.value.clear();
    Codec<K>::encode(rec.key, out.key);
    Codec<V>::encode(rec.value, out.value);
  }

  void sort_buffer() {
    std::sort(buffer_.begin(), buffer_.end(), before);
  }

  void spill() {
    sort_buffer();
    RunWriter writer(dir_.run_path(runs_));
    RawRecord raw;
    for (const Record& rec : buffer_) {
      encode(rec, raw);
      writer.write(raw);
    }
    writer.close();
    ++runs_;
    ++stats_.spills;
    stats_.spilled_records += writer.records();
    stats_.spilled_bytes += writer.bytes();
    buffer_.clear();
    buffered_bytes_ = 0;
  }

  const SpillDir& dir_;
  std::size_t cap_;
  std::vector<Record> buffer_;
  std::size_t buffered_bytes_ = 0;
  std::size_t total_records_ = 0;
  std::size_t runs_ = 0;
  SpillStats stats_;
};

}  // namespace peachy::dmr
