// Spill-run files for the dmr external sort (DESIGN.md "Distributed
// MapReduce": spill format).
//
// A run file is a flat sequence of framed shuffle records:
//
//   u32 partition | u32 task | u32 seq | u32 key_len | u32 val_len
//   key bytes | value bytes
//
// all little-endian, no alignment, no file header — a run is always
// written and read by the same build on the same host, so the format only
// has to be self-delimiting, not portable. Records inside one run are
// sorted by (partition, key, task, seq) at spill time; the reducer merges
// runs instead of re-sorting.
//
// The same framing doubles as the in-flight shuffle-block format
// (rank-to-rank payloads) and the checkpoint record format, so every
// serialization path in dmr shares one encoder/decoder pair.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace peachy::dmr {

/// One shuffle record in encoded form. `task` is the global map-task index
/// and `seq` the emit index inside that task — together they are the
/// deterministic tie-break that makes the distributed merge reproduce
/// mr::Job's (map task, emit order) value ordering exactly.
struct RawRecord {
  std::uint32_t partition = 0;
  std::uint32_t task = 0;
  std::uint32_t seq = 0;
  std::vector<std::byte> key;
  std::vector<std::byte> value;

  /// Framed size of this record (header + payloads).
  std::size_t framed_bytes() const { return 20 + key.size() + value.size(); }
};

/// Appends the framed record to `out`.
void append_record(const RawRecord& rec, std::vector<std::byte>& out);

/// Reads one framed record starting at `pos` in `buf`; advances `pos`.
/// Returns false when `pos` is at the end; throws peachy::Error on a
/// truncated or corrupt frame.
bool read_record(const std::vector<std::byte>& buf, std::size_t& pos,
                 RawRecord& rec);

/// Writes framed records to a run file. The writer is append-only; the
/// caller sorts before writing.
class RunWriter {
 public:
  explicit RunWriter(const std::string& path);
  void write(const RawRecord& rec);
  /// Flushes and closes; throws on I/O failure (a lost spill is data loss).
  void close();
  std::size_t records() const { return records_; }
  std::size_t bytes() const { return bytes_; }

 private:
  std::ofstream os_;
  std::string path_;
  std::size_t records_ = 0;
  std::size_t bytes_ = 0;
};

/// Sequentially reads a run file written by RunWriter.
class RunReader {
 public:
  explicit RunReader(const std::string& path);
  /// Reads the next record; false at a clean EOF, throws on a torn file.
  bool next(RawRecord& rec);

 private:
  std::ifstream is_;
  std::string path_;
};

/// A private spill directory, created on demand and removed on
/// destruction (each rank of a dmr job owns one).
class SpillDir {
 public:
  /// `hint` names the directory to use (created if missing, kept on
  /// destruction); empty = a fresh mkdtemp under /tmp, removed with the
  /// object.
  explicit SpillDir(const std::string& hint = "");
  ~SpillDir();
  SpillDir(const SpillDir&) = delete;
  SpillDir& operator=(const SpillDir&) = delete;

  const std::string& path() const { return path_; }
  /// Path for the n-th run file in this directory.
  std::string run_path(std::size_t n) const;

 private:
  std::string path_;
  bool owned_ = false;
};

}  // namespace peachy::dmr
