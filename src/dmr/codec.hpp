// Record serialization for the distributed MapReduce shuffle (src/dmr).
//
// Intermediate and output records must cross rank boundaries (sockets,
// process gaps) and survive on disk in spill runs, so dmr needs a byte
// codec per key/value type. The default handles every trivially copyable
// type by memcpy; std::string gets its own specialization. Anything else
// must specialize Codec<T> — a compile-time error points there.
//
// Ordering note: encoded bytes are NOT compared; the external sorter
// decodes keys and compares with the type's operator<, so dmr orders
// records exactly like the single-process mr::Job does. Codecs only need
// to round-trip, not to be order-preserving.
#pragma once

#include <cstddef>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "core/error.hpp"

namespace peachy::dmr {

/// Byte codec for one record component. encode() appends to `out`;
/// decode() consumes exactly `n` bytes at `p` (the record framing stores
/// per-field lengths, so decoders never need to guess).
template <typename T, typename Enable = void>
struct Codec {
  static_assert(std::is_trivially_copyable_v<T>,
                "no dmr::Codec for this type: specialize Codec<T> to ship "
                "it through the distributed shuffle");

  static void encode(const T& v, std::vector<std::byte>& out) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    out.insert(out.end(), p, p + sizeof(T));
  }

  static T decode(const std::byte* p, std::size_t n) {
    PEACHY_REQUIRE(n == sizeof(T), "dmr codec: expected " << sizeof(T)
                                                          << " bytes, got "
                                                          << n);
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
  }
};

template <>
struct Codec<std::string> {
  static void encode(const std::string& v, std::vector<std::byte>& out) {
    const auto* p = reinterpret_cast<const std::byte*>(v.data());
    out.insert(out.end(), p, p + v.size());
  }

  static std::string decode(const std::byte* p, std::size_t n) {
    return std::string(reinterpret_cast<const char*>(p), n);
  }
};

/// Approximate in-memory footprint of a record component — the unit the
/// spill buffer cap and the shuffle-byte counters are measured in. For
/// encoded-on-the-wire records this matches the payload bytes exactly.
template <typename T>
std::size_t byte_size(const T& v) {
  if constexpr (std::is_same_v<T, std::string>) {
    return v.size();
  } else if constexpr (std::is_trivially_copyable_v<T>) {
    return sizeof(T);
  } else {
    std::vector<std::byte> tmp;  // custom-codec types: measure by encoding
    Codec<T>::encode(v, tmp);
    return tmp.size();
  }
}

}  // namespace peachy::dmr
