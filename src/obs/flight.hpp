// Crash flight recorder: an always-on, fixed-size ring of recent notable
// events (DESIGN.md "Distributed telemetry").
//
// Full tracing is opt-in and heavy; the flight recorder is neither. Every
// rank keeps the last kCapacity low-frequency events — frame retransmits,
// peer suspicion, window stalls, checkpoint landmarks — in a preallocated
// ring written with one fetch_add and a few stores, cheap enough to stay on
// even when obs::enabled() is false. When a rank dies (PeerDied, retry
// exhaustion, fatal signal) the ring is dumped to flight-<rank>.json,
// turning a failed seeded-fault run from pass/fail into a post-mortem.
//
// Notes are fixed-size POD (no allocation, no strings beyond a bounded
// name) so note() is safe from any thread and dump-on-signal needs only
// async-signal-safe calls: the dump path formats integers by hand into a
// stack buffer and uses write(2), never stdio or malloc.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace peachy::obs {

/// The per-process flight recorder. All methods are thread-safe; note() is
/// lock-free and allocation-free.
class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 4096;  ///< entries kept (ring)
  static constexpr std::size_t kNameBytes = 24;   ///< name truncation bound

  /// The process-wide recorder every subsystem feeds.
  static FlightRecorder& global();

  /// Records one event: a short static-ish name plus up to four numeric
  /// arguments. Safe from any thread, never blocks, never allocates.
  void note(const char* name, std::int64_t a0 = 0, std::int64_t a1 = 0,
            std::int64_t a2 = 0, std::int64_t a3 = 0);

  /// Stamps this process's rank into dump filenames (flight-<rank>.json).
  /// Without an identity the dump is named flight.json.
  void set_identity(int rank);
  int identity() const;

  /// Directory dumps land in. Defaults to $PEACHY_FLIGHT_DIR, else ".".
  void set_dump_dir(const std::string& dir);

  /// Writes the ring (oldest first) to flight-<rank>.json in the dump dir,
  /// with `reason` recorded in the header. Returns the path written, or ""
  /// when the ring is empty. Safe to call multiple times (later dumps
  /// overwrite — the last reason a rank died for is the one that matters).
  std::string dump(const char* reason);

  /// Installs SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers that dump the ring
  /// via async-signal-safe writes, then re-raise with the default handler
  /// so the process still dies with the original signal. Idempotent.
  static void install_crash_handler();

  /// Events recorded since start (may exceed kCapacity; the ring keeps the
  /// newest kCapacity of them).
  std::uint64_t total_notes() const;

  /// Testing hook: forget everything recorded so far.
  void clear();

 private:
  FlightRecorder();
};

}  // namespace peachy::obs
