// Distributed tier of the observability layer (DESIGN.md "Distributed
// telemetry"): the pieces that turn per-process spans and counters into one
// cluster-wide picture.
//
//  * TraceContext — a compact (trace_id, span_id) pair carried across rank
//    boundaries. The sending side stamps the current thread's context onto
//    the wire (net DATA frames grow a 16-byte trailer, inproc mailboxes an
//    extra field); the receiving side adopts it, so a dmr shuffle or a halo
//    exchange links sender and receiver spans into one causal tree. Span
//    ids embed the rank in their high bits, which is what keeps ids unique
//    across processes without coordination.
//  * OffsetEstimator — Cristian-style clock-offset/RTT estimation from
//    (origin, peer, now) timestamp triples. Min-RTT filtered (samples taken
//    under congestion are discarded) and EWMA-smoothed; the TCP transport
//    runs one per peer off the heartbeat PING path.
//  * cluster_prometheus_text — the rank-0 rollup: per-rank metric samples
//    merged into one Prometheus exposition where every sample carries a
//    rank label. Families are sorted by name, so output is byte-stable.
//
// Like the rest of obs this header sits below peachy_core: no dependencies
// beyond the standard library and obs.hpp itself.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace peachy::obs::cluster {

/// The causal context one message carries: which trace it belongs to and
/// which span caused it. trace_id == 0 means "no context".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// Wire size of an encoded context: trace_id then span_id, little-endian.
inline constexpr std::size_t kContextBytes = 16;

/// Encodes `ctx` into exactly kContextBytes at `out` / decodes it back.
void encode_context(const TraceContext& ctx, std::byte* out);
TraceContext decode_context(const std::byte* in);

/// This process's rank identity (stamped into span ids and telemetry
/// snapshots). -1 until a runtime (mpp) claims one.
void set_rank(int rank);
int rank();

/// The trace id every context minted by this process belongs to. A
/// launcher picks one id for the whole world (spawned workers inherit it
/// through the environment); unset, a process-local id is generated on
/// first use so single-process traces still form one tree.
void set_trace_id(std::uint64_t id);
std::uint64_t trace_id();

/// Mints a span id unique across the world: (rank+1) in the high 16 bits,
/// a process-wide counter below. Never returns 0 (0 means "no parent").
std::uint64_t next_span_id();

/// The calling thread's current context. Messages sent while a context is
/// current carry it; adopting a received context makes subsequent sends its
/// causal children.
TraceContext current();
void set_current(const TraceContext& ctx);
void clear_current();

/// RAII set/restore of the calling thread's context (the send path pins the
/// fresh send-span context exactly for the duration of the transport call).
class ScopedContext {
 public:
  explicit ScopedContext(const TraceContext& ctx);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  TraceContext saved_;
};

/// Cristian-style clock-offset estimator for one peer. Feed it the three
/// timestamps of a probe round trip — origin (probe sent, our clock), peer
/// (peer's clock when it answered), now (answer received, our clock) — and
/// it maintains offset ≈ peer_clock − our_clock:
///
///   rtt    = now − origin
///   sample = peer − (origin + rtt/2)       (peer read its clock mid-flight)
///
/// Samples whose rtt exceeds 1.5× the minimum observed rtt are rejected
/// (queueing delay corrupts the midpoint assumption); accepted samples are
/// EWMA-smoothed (α = 1/4) so the estimate tracks drift without jitter.
class OffsetEstimator {
 public:
  /// Returns true when the sample was accepted into the estimate.
  bool sample(std::int64_t origin_ns, std::int64_t peer_ns,
              std::int64_t now_ns);

  bool valid() const { return samples_ > 0; }
  /// peer_clock − our_clock, in ns. 0 until the first accepted sample.
  std::int64_t offset_ns() const { return static_cast<std::int64_t>(offset_); }
  std::int64_t min_rtt_ns() const { return min_rtt_ns_; }
  std::uint64_t samples() const { return samples_; }

 private:
  double offset_ = 0.0;
  std::int64_t min_rtt_ns_ = 0;
  std::uint64_t samples_ = 0;
};

/// One rank's contribution to the cluster rollup.
struct RankMetrics {
  int rank = 0;
  std::vector<MetricSample> samples;
};

/// Merges per-rank metric samples into one Prometheus exposition with a
/// rank="N" label on every sample line. Families are sorted by name (and
/// ranks within a family by rank), so the output is deterministic — fit
/// for golden tests, diffing, and the /metrics endpoint.
std::string cluster_prometheus_text(const std::vector<RankMetrics>& per_rank);

}  // namespace peachy::obs::cluster
