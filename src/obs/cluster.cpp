#include "obs/cluster.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstring>
#include <random>

namespace peachy::obs::cluster {

namespace {

std::atomic<int> g_rank{-1};
std::atomic<std::uint64_t> g_trace_id{0};
std::atomic<std::uint64_t> g_span_counter{0};

thread_local TraceContext tl_current;

void put_u64(std::uint64_t v, std::byte* out) {
  for (int i = 0; i < 8; ++i)
    out[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
}

std::uint64_t get_u64(const std::byte* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in[i]))
         << (8 * i);
  return v;
}

}  // namespace

void encode_context(const TraceContext& ctx, std::byte* out) {
  put_u64(ctx.trace_id, out);
  put_u64(ctx.span_id, out + 8);
}

TraceContext decode_context(const std::byte* in) {
  TraceContext ctx;
  ctx.trace_id = get_u64(in);
  ctx.span_id = get_u64(in + 8);
  return ctx;
}

void set_rank(int rank) { g_rank.store(rank, std::memory_order_relaxed); }
int rank() { return g_rank.load(std::memory_order_relaxed); }

void set_trace_id(std::uint64_t id) {
  g_trace_id.store(id, std::memory_order_relaxed);
}

std::uint64_t trace_id() {
  std::uint64_t id = g_trace_id.load(std::memory_order_relaxed);
  if (id != 0) return id;
  // Lazily mint a nonzero process-local id so single-process traces form a
  // tree without any launcher involvement. random_device avoids the banned
  // time-based seeds and ties between processes started the same tick.
  std::random_device rd;
  std::uint64_t fresh =
      (static_cast<std::uint64_t>(rd()) << 32) ^ static_cast<std::uint64_t>(rd());
  if (fresh == 0) fresh = 1;
  // First caller wins; everyone then agrees on one id.
  if (g_trace_id.compare_exchange_strong(id, fresh, std::memory_order_relaxed))
    return fresh;
  return id;
}

std::uint64_t next_span_id() {
  // (rank+1) in the high bits keeps ids globally unique without any
  // cross-rank coordination; +1 so rank 0 (and unset rank -1 → 0) still
  // yields a nonzero namespace. 48 bits of counter will not wrap.
  const std::uint64_t hi =
      static_cast<std::uint64_t>(rank() + 1) & 0xffff;
  const std::uint64_t lo =
      g_span_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  return (hi << 48) | (lo & 0xffffffffffffULL);
}

TraceContext current() { return tl_current; }
void set_current(const TraceContext& ctx) { tl_current = ctx; }
void clear_current() { tl_current = TraceContext{}; }

ScopedContext::ScopedContext(const TraceContext& ctx) : saved_(tl_current) {
  tl_current = ctx;
}

ScopedContext::~ScopedContext() { tl_current = saved_; }

// --- OffsetEstimator --------------------------------------------------------

bool OffsetEstimator::sample(std::int64_t origin_ns, std::int64_t peer_ns,
                             std::int64_t now_ns) {
  const std::int64_t rtt = now_ns - origin_ns;
  if (rtt < 0) return false;  // clock went backwards / bogus probe
  if (samples_ == 0 || rtt < min_rtt_ns_) min_rtt_ns_ = rtt;
  // A probe delayed past 1.5× the best rtt spent the extra time queued on
  // one leg; its midpoint assumption is junk, so it must not move the
  // estimate (it still tightened min_rtt above if it was the new best).
  if (samples_ > 0 && rtt > min_rtt_ns_ + min_rtt_ns_ / 2) return false;
  const double sample =
      static_cast<double>(peer_ns) -
      (static_cast<double>(origin_ns) + static_cast<double>(rtt) / 2.0);
  if (samples_ == 0)
    offset_ = sample;
  else
    offset_ += (sample - offset_) / 4.0;  // EWMA, alpha = 1/4
  ++samples_;
  return true;
}

// --- Cluster rollup ---------------------------------------------------------

std::string cluster_prometheus_text(const std::vector<RankMetrics>& per_rank) {
  // Group by family name across ranks: one # TYPE line per family, then
  // each rank's sample with a rank label. Flatten, sort by (name, rank).
  struct Entry {
    const MetricSample* sample;
    int rank;
  };
  std::vector<Entry> entries;
  for (const RankMetrics& rm : per_rank)
    for (const MetricSample& s : rm.samples) entries.push_back({&s, rm.rank});
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.sample->name != b.sample->name) return a.sample->name < b.sample->name;
    return a.rank < b.rank;
  });

  std::string out;
  const std::string* prev_name = nullptr;
  for (const Entry& e : entries) {
    const bool new_family = prev_name == nullptr || *prev_name != e.sample->name;
    prev_name = &e.sample->name;
    detail::prometheus_family(*e.sample, new_family,
                              "{rank=\"" + std::to_string(e.rank) + "\"}", out);
  }
  return out;
}

}  // namespace peachy::obs::cluster
