// Unified observability layer: the one tracing/metrics substrate every
// execution layer feeds (DESIGN.md "Observability").
//
// Two facilities share a single process-wide on/off gate:
//  * Registry — named counters/gauges/histograms. Counter increments land in
//    per-lane cache-line-sized shards (one relaxed atomic add, no sharing
//    between threads); scrape-time aggregation sums the shards. Export as
//    Prometheus-style text or a JSON dump.
//  * Tracer — nested spans and instant events. Each thread owns a lane
//    (append-only buffer, like trace::TraceRecorder) and a thread-local
//    stack of open spans; export is Chrome trace-event JSON loadable in
//    Perfetto / chrome://tracing.
//
// Overhead contract: every instrumentation site is gated on obs::enabled(),
// a single relaxed atomic load, so the disabled path adds one predictable
// branch to hot loops and touches no shared state. The gate defaults to the
// PEACHY_OBS environment variable (unset/"0" = off) and can be flipped at
// runtime with obs::set_enabled().
//
// This library sits *below* peachy_core (core/task_runtime.cpp feeds it),
// so it only uses core's header-only pieces (error.hpp, timer.hpp) and
// serializes JSON itself instead of depending on core/json.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace peachy::obs {

namespace detail {
extern std::atomic<bool> g_enabled;

/// Appends `s` as a quoted, escaped JSON string to `out`. Shared by the
/// registry/trace serializers here and by obs::cluster.
void escape_json(const std::string& s, std::string& out);

/// Sanitizes a metric name into the Prometheus charset [a-zA-Z0-9_:].
std::string prometheus_name(const std::string& name);
}  // namespace detail

struct MetricSample;
namespace detail {
/// Serializes one metric family: "# TYPE" line (when `emit_type`) plus
/// sample lines with `labels` attached ("" or "{rank=\"N\"}"). Shared by
/// Registry::prometheus_text and the obs::cluster rollup.
void prometheus_family(const MetricSample& s, bool emit_type,
                       const std::string& labels, std::string& out);
}  // namespace detail

/// True when instrumentation is recording. One relaxed load — cheap enough
/// to gate per-tile / per-message hot paths.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the process-wide gate (overrides the PEACHY_OBS environment
/// default). Returns the previous state.
bool set_enabled(bool on);

// --- Metrics registry -------------------------------------------------------

/// Monotonic counter. add() increments this thread's shard; value() sums
/// all shards (scrape-time aggregation, never exact mid-increment).
class Counter {
 public:
  void add(std::uint64_t delta = 1);
  std::uint64_t value() const;
  void reset();

 private:
  friend class Registry;
  Counter() = default;
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-write-wins signed gauge (set) with relaxed add for deltas.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<std::int64_t> value_{0};
};

/// Exponential (power-of-two) histogram of non-negative values: bucket b
/// holds observations in [2^(b-1), 2^b) (bucket 0 holds {0}). Buckets are
/// single relaxed atomics — contention is bounded by enabled-path traffic.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(std::int64_t v);
  std::uint64_t count() const;
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Copy of all bucket counts (index = bucket).
  std::vector<std::uint64_t> buckets() const;
  void reset();

 private:
  friend class Registry;
  Histogram() = default;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> sum_{0};
};

/// One metric's scraped state, detached from its live atomics. The unit of
/// cross-process shipping: workers serialize samples() and rank 0 rebuilds
/// them for the cluster rollup without sharing any registry machinery.
struct MetricSample {
  enum class Kind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

  std::string name;
  Kind kind = Kind::kCounter;
  std::int64_t value = 0;               ///< counter/gauge value
  std::uint64_t count = 0;              ///< histogram only
  std::int64_t sum = 0;                 ///< histogram only
  std::vector<std::uint64_t> buckets;   ///< histogram only
};

/// Named metric registry. Lookup by name is mutex-guarded — call sites
/// should resolve once (e.g. a function-local static reference) and then
/// hit only the lock-free metric itself.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every subsystem feeds.
  static Registry& global();

  /// Get-or-create. A name stays one kind forever (mismatch throws).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Snapshot of every metric as detached samples, sorted by name across
  /// all three kinds. The serialization-friendly view telemetry shipping
  /// and the Prometheus exposition are both built from.
  std::vector<MetricSample> samples() const;

  /// Prometheus text exposition: "# TYPE name counter|gauge|histogram" then
  /// one "name value" line (histograms expand to _count/_sum/_bucket{le=}).
  /// Families are sorted by name across kinds, so output is deterministic
  /// and diffable (and the /metrics endpoint returns stable text).
  std::string prometheus_text() const;

  /// JSON dump: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string json_dump() const;

  /// Writes prometheus_text() (or json_dump() when `path` ends in ".json").
  void write(const std::string& path) const;

  /// Zeroes every metric in place. Outstanding metric references stay
  /// valid — instrumentation sites may cache them across resets.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// --- Tracer -----------------------------------------------------------------

/// One trace event in Chrome trace-event terms: a complete span ("X", with
/// duration), an instant ("i") or a counter sample ("C"). Timestamps are
/// now_ns() (steady clock); tid is the recording thread's obs lane.
struct TraceEvent {
  enum class Phase : char { kComplete = 'X', kInstant = 'i' };

  std::string name;
  std::string cat;
  Phase ph = Phase::kComplete;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;  ///< kComplete only
  int tid = 0;
  /// Track group ("process") the event belongs to. Per-process tracing
  /// leaves this 0; the rank-0 trace merger sets it to the source rank so
  /// every rank renders as its own track group in Perfetto.
  int pid = 0;
  /// Numeric arguments ("args" in the JSON) — enough for ids, sizes, iters.
  std::vector<std::pair<std::string, std::int64_t>> args;
};

/// Serializes events as a Chrome trace-event JSON array (ts/dur in
/// microseconds, sorted by timestamp so every (pid, tid) track's sequence
/// is monotonic). `process_names` adds a process_name metadata event per
/// pid (the merged cluster trace labels pid N "rank N"). The result loads
/// in Perfetto and chrome://tracing.
std::string chrome_trace_json(
    std::vector<TraceEvent> events,
    const std::map<int, std::string>& process_names = {});

/// chrome_trace_json() straight to a file.
void write_chrome_trace(const std::string& path, std::vector<TraceEvent> events,
                        const std::map<int, std::string>& process_names = {});

/// Collects spans and instants from concurrent threads. Every recording
/// thread is assigned a process-wide lane id on first use; a lane's buffer
/// is appended only by its owner (the per-lane mutex it shares with
/// snapshot() is therefore uncontended on the hot path).
class Tracer {
 public:
  /// `max_lanes` bounds distinct tids; surplus threads hash onto existing
  /// lanes (buffer stays correct, attribution degrades).
  explicit Tracer(int max_lanes = 256);

  /// The process-wide tracer every subsystem feeds.
  static Tracer& global();

  int max_lanes() const { return static_cast<int>(lanes_.size()); }

  /// Opens a nested span on this thread; close with end(). Records nothing
  /// when obs is disabled (the matching end() is then a no-op too).
  void begin(std::string name, std::string cat);

  /// Closes this thread's innermost open span, attaching `args`.
  void end(std::vector<std::pair<std::string, std::int64_t>> args = {});

  /// Records an already-timed span (e.g. a tile measured around a kernel
  /// call) without touching the span stack.
  void complete(std::string name, std::string cat, std::int64_t start_ns,
                std::int64_t end_ns,
                std::vector<std::pair<std::string, std::int64_t>> args = {});

  /// Records a zero-duration instant event.
  void instant(std::string name, std::string cat,
               std::vector<std::pair<std::string, std::int64_t>> args = {});

  /// All events recorded so far (stable within each lane). Safe to call
  /// concurrently with recording; events being written race only with their
  /// own lane's mutex, never with readers of other lanes.
  std::vector<TraceEvent> snapshot() const;

  std::size_t total_events() const;
  void clear();

  /// Chrome trace-event JSON of everything recorded so far.
  std::string chrome_json() const { return chrome_trace_json(snapshot()); }
  void write_chrome_json(const std::string& path) const {
    write_chrome_trace(path, snapshot());
  }

 private:
  struct alignas(64) Lane {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
  };
  struct OpenSpan {
    Tracer* tracer;
    std::string name;
    std::string cat;
    std::int64_t start_ns;
  };

  /// This thread's stack of open spans (shared across Tracer instances;
  /// entries carry their owning tracer).
  static std::vector<OpenSpan>& span_stack();

  Lane& lane_for_this_thread();
  int lane_id_for_this_thread();
  void append(TraceEvent ev);

  std::vector<Lane> lanes_;
};

/// RAII span on the global tracer: opens at construction when obs is
/// enabled, closes at destruction. Args may be attached before close.
class Span {
 public:
  Span(std::string name, std::string cat);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric argument to the span (recorded at close).
  void arg(std::string key, std::int64_t value);

  /// Closes the span now (phase-style spans inside a longer scope); the
  /// destructor then does nothing.
  void close();

 private:
  bool active_;
  std::vector<std::pair<std::string, std::int64_t>> args_;
};

}  // namespace peachy::obs
