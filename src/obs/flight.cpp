#include "obs/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "core/timer.hpp"

namespace peachy::obs {

namespace {

// Ring storage is static and every field is a lock-free relaxed atomic:
// note() racing dump() (a heartbeat thread noting while the main thread
// post-mortems a PeerDied) stays well-defined, and the signal-handler dump
// path touches nothing that could deadlock or allocate. A note overwritten
// mid-dump may appear torn across fields — acceptable for a post-mortem
// artifact, never undefined behavior.
struct Note {
  std::atomic<std::int64_t> ts_ns{0};
  std::atomic<char> name[FlightRecorder::kNameBytes];
  std::atomic<std::int64_t> a[4];
};

Note g_ring[FlightRecorder::kCapacity];
std::atomic<std::uint64_t> g_seq{0};
std::atomic<int> g_rank{-1};

// Precomputed dump path so the signal handler never formats one. Guarded by
// g_path_mutex against concurrent setters; the handler only reads, and a
// torn read during a simultaneous set_identity is a tolerable misname.
char g_path[512] = "flight.json";
std::mutex g_path_mutex;
char g_dir[384] = ".";

void rebuild_path_locked() {
  const int rank = g_rank.load(std::memory_order_relaxed);
  if (rank >= 0)
    std::snprintf(g_path, sizeof g_path, "%s/flight-%d.json", g_dir, rank);
  else
    std::snprintf(g_path, sizeof g_path, "%s/flight.json", g_dir);
}

// --- async-signal-safe JSON writer -----------------------------------------

// Buffered writer over write(2). No allocation, no stdio, no locale.
struct SafeWriter {
  int fd;
  char buf[4096];
  std::size_t len = 0;

  void flush() {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;  // best effort: a failing dump must not throw
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
  void put(char c) {
    if (len == sizeof buf) flush();
    buf[len++] = c;
  }
  void str(const char* s) {
    for (; *s; ++s) put(*s);
  }
  void num(std::int64_t v) {
    char tmp[24];
    std::size_t n = 0;
    std::uint64_t u =
        v < 0 ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
    do {
      tmp[n++] = static_cast<char>('0' + u % 10);
      u /= 10;
    } while (u != 0);
    if (v < 0) put('-');
    while (n > 0) put(tmp[--n]);
  }
  // Names are code-controlled ASCII; anything that would need JSON escaping
  // degrades to '_' instead of growing an escaper onto the signal path.
  void name(const std::atomic<char>* s, std::size_t max) {
    put('"');
    for (std::size_t i = 0; i < max; ++i) {
      const char c = s[i].load(std::memory_order_relaxed);
      if (c == '\0') break;
      const bool safe = c >= 0x20 && c != '"' && c != '\\' && c < 0x7f;
      put(safe ? c : '_');
    }
    put('"');
  }
};

// The core dump routine — everything it calls is async-signal-safe.
// Returns true when a file was written.
bool dump_to_path(const char* path, const char* reason) {
  const std::uint64_t seq = g_seq.load(std::memory_order_acquire);
  if (seq == 0) return false;
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  SafeWriter w;
  w.fd = fd;
  w.str("{\"reason\":\"");
  for (const char* s = reason; *s; ++s) {
    const char c = *s;
    const bool safe = c >= 0x20 && c != '"' && c != '\\' && c < 0x7f;
    w.put(safe ? c : '_');
  }
  w.str("\",\"rank\":");
  w.num(g_rank.load(std::memory_order_relaxed));
  w.str(",\"total_notes\":");
  w.num(static_cast<std::int64_t>(seq));
  w.str(",\"events\":[");

  const std::uint64_t count =
      std::min<std::uint64_t>(seq, FlightRecorder::kCapacity);
  for (std::uint64_t i = seq - count; i < seq; ++i) {
    const Note& n = g_ring[i % FlightRecorder::kCapacity];
    if (i != seq - count) w.put(',');
    w.str("\n{\"ts_ns\":");
    w.num(n.ts_ns.load(std::memory_order_relaxed));
    w.str(",\"name\":");
    w.name(n.name, FlightRecorder::kNameBytes);
    w.str(",\"args\":[");
    for (int k = 0; k < 4; ++k) {
      if (k) w.put(',');
      w.num(n.a[k].load(std::memory_order_relaxed));
    }
    w.str("]}");
  }
  w.str("\n]}\n");
  w.flush();
  ::close(fd);
  return true;
}

void crash_handler(int sig) {
  char reason[32];
  std::size_t n = 0;
  for (const char* s = "fatal-signal-"; *s; ++s) reason[n++] = *s;
  if (sig >= 10) reason[n++] = static_cast<char>('0' + sig / 10);
  reason[n++] = static_cast<char>('0' + sig % 10);
  reason[n] = '\0';
  dump_to_path(g_path, reason);
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

FlightRecorder::FlightRecorder() {
  const char* dir = std::getenv("PEACHY_FLIGHT_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    std::lock_guard lock(g_path_mutex);
    std::snprintf(g_dir, sizeof g_dir, "%s", dir);
    rebuild_path_locked();
  }
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::note(const char* name, std::int64_t a0, std::int64_t a1,
                          std::int64_t a2, std::int64_t a3) {
  const std::uint64_t slot = g_seq.fetch_add(1, std::memory_order_acq_rel);
  Note& n = g_ring[slot % kCapacity];
  n.ts_ns.store(now_ns(), std::memory_order_relaxed);
  std::size_t i = 0;
  for (; i < kNameBytes - 1 && name[i] != '\0'; ++i)
    n.name[i].store(name[i], std::memory_order_relaxed);
  n.name[i].store('\0', std::memory_order_relaxed);
  n.a[0].store(a0, std::memory_order_relaxed);
  n.a[1].store(a1, std::memory_order_relaxed);
  n.a[2].store(a2, std::memory_order_relaxed);
  n.a[3].store(a3, std::memory_order_relaxed);
}

void FlightRecorder::set_identity(int rank) {
  std::lock_guard lock(g_path_mutex);
  g_rank.store(rank, std::memory_order_relaxed);
  rebuild_path_locked();
}

int FlightRecorder::identity() const {
  return g_rank.load(std::memory_order_relaxed);
}

void FlightRecorder::set_dump_dir(const std::string& dir) {
  std::lock_guard lock(g_path_mutex);
  std::snprintf(g_dir, sizeof g_dir, "%s", dir.c_str());
  rebuild_path_locked();
}

std::string FlightRecorder::dump(const char* reason) {
  char path[sizeof g_path];
  {
    std::lock_guard lock(g_path_mutex);
    std::memcpy(path, g_path, sizeof path);
  }
  if (!dump_to_path(path, reason)) return "";
  return path;
}

void FlightRecorder::install_crash_handler() {
  // Touch the singleton so the PEACHY_FLIGHT_DIR default is resolved before
  // any signal can arrive.
  (void)global();
  static std::atomic<bool> installed{false};
  if (installed.exchange(true)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE})
    ::sigaction(sig, &sa, nullptr);
}

std::uint64_t FlightRecorder::total_notes() const {
  return g_seq.load(std::memory_order_relaxed);
}

void FlightRecorder::clear() { g_seq.store(0, std::memory_order_release); }

}  // namespace peachy::obs
