#include "obs/obs.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "core/error.hpp"
#include "core/timer.hpp"

namespace peachy::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

bool env_default() {
  const char* env = std::getenv("PEACHY_OBS");
  if (env == nullptr) return false;
  return std::strcmp(env, "") != 0 && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "false") != 0 && std::strcmp(env, "off") != 0;
}

// Reads PEACHY_OBS once at static-init time; set_enabled overrides later.
const bool g_env_init = [] {
  detail::g_enabled.store(env_default(), std::memory_order_relaxed);
  return true;
}();

// Per-thread ids, assigned on first use. The shard id spreads counter
// increments across cache lines; the lane id names the tracer tid.
std::atomic<int> g_next_thread{0};
thread_local int tl_thread_id = -1;

int this_thread_id() {
  if (tl_thread_id < 0)
    tl_thread_id = g_next_thread.fetch_add(1, std::memory_order_relaxed);
  return tl_thread_id;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  PEACHY_REQUIRE(out.good(), "cannot open \"" << path << "\" for writing");
  out << text;
  PEACHY_REQUIRE(out.good(), "write to \"" << path << "\" failed");
}

}  // namespace

namespace detail {

// Minimal JSON string escaping (metric/span names are code-controlled, but
// stay safe for quotes, backslashes and control bytes).
void escape_json(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// Prometheus metric names allow [a-zA-Z0-9_:]; dots and dashes become '_'.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':'))
      c = '_';
  return out;
}

}  // namespace detail

namespace {
using detail::escape_json;
using detail::prometheus_name;
}  // namespace

bool set_enabled(bool on) {
  (void)g_env_init;
  return detail::g_enabled.exchange(on, std::memory_order_relaxed);
}

// --- Counter / Histogram ----------------------------------------------------

void Counter::add(std::uint64_t delta) {
  shards_[static_cast<std::size_t>(this_thread_id()) % kShards].v.fetch_add(
      delta, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

void Histogram::observe(std::int64_t v) {
  const std::size_t b =
      v <= 0 ? 0
             : std::min<std::size_t>(kBuckets - 1,
                                     std::bit_width(static_cast<std::uint64_t>(v)));
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::uint64_t> Histogram::buckets() const {
  std::vector<std::uint64_t> out(kBuckets);
  for (std::size_t i = 0; i < kBuckets; ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// --- Registry ---------------------------------------------------------------

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  PEACHY_REQUIRE(!gauges_.count(name) && !histograms_.count(name),
                 "metric \"" << name << "\" already registered as another kind");
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  PEACHY_REQUIRE(!counters_.count(name) && !histograms_.count(name),
                 "metric \"" << name << "\" already registered as another kind");
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge());
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  PEACHY_REQUIRE(!counters_.count(name) && !gauges_.count(name),
                 "metric \"" << name << "\" already registered as another kind");
  auto& slot = histograms_[name];
  if (!slot) slot.reset(new Histogram());
  return *slot;
}

std::vector<MetricSample> Registry::samples() const {
  std::lock_guard lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<std::int64_t>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.count = h->count();
    s.sum = h->sum();
    s.buckets = h->buckets();
    out.push_back(std::move(s));
  }
  // One global order by name — the three kind maps are each sorted, but a
  // deterministic exposition needs families interleaved across kinds too.
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

namespace detail {

// Shared family serializer for the single-process exposition and the
// rank-labeled cluster rollup: `labels` is either empty or "{rank=\"N\"}"
// (histograms splice their le label in before the closing brace).
void prometheus_family(const MetricSample& s, bool emit_type,
                       const std::string& labels, std::string& out) {
  const std::string pn = prometheus_name(s.name);
  switch (s.kind) {
    case MetricSample::Kind::kCounter:
      if (emit_type) out += "# TYPE " + pn + " counter\n";
      out += pn + labels + " " + std::to_string(s.value) + "\n";
      return;
    case MetricSample::Kind::kGauge:
      if (emit_type) out += "# TYPE " + pn + " gauge\n";
      out += pn + labels + " " + std::to_string(s.value) + "\n";
      return;
    case MetricSample::Kind::kHistogram: {
      if (emit_type) out += "# TYPE " + pn + " histogram\n";
      const std::string inner =
          labels.empty() ? std::string()
                         : labels.substr(1, labels.size() - 2) + ",";
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < s.buckets.size(); ++b) {
        cumulative += s.buckets[b];
        // Bucket b holds values < 2^b (bucket 0 holds {0}, le="1" covers
        // it); the overflow bucket 63 only shows up in the +Inf line.
        if (s.buckets[b] == 0 || b > 62) continue;
        out += pn + "_bucket{" + inner + "le=\"" +
               std::to_string(std::uint64_t{1} << b) + "\"} " +
               std::to_string(cumulative) + "\n";
      }
      out += pn + "_bucket{" + inner + "le=\"+Inf\"} " +
             std::to_string(cumulative) + "\n";
      out += pn + "_sum" + labels + " " + std::to_string(s.sum) + "\n";
      out += pn + "_count" + labels + " " + std::to_string(cumulative) + "\n";
      return;
    }
  }
}

}  // namespace detail

std::string Registry::prometheus_text() const {
  std::string out;
  for (const MetricSample& s : samples())
    detail::prometheus_family(s, /*emit_type=*/true, /*labels=*/"", out);
  return out;
}

std::string Registry::json_dump() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    escape_json(name, out);
    out.push_back(':');
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    escape_json(name, out);
    out.push_back(':');
    out += std::to_string(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    escape_json(name, out);
    out += ":{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + std::to_string(h->sum()) + ",\"buckets\":[";
    const std::vector<std::uint64_t> buckets = h->buckets();
    std::size_t last = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b)
      if (buckets[b] != 0) last = b + 1;
    for (std::size_t b = 0; b < last; ++b) {
      if (b) out.push_back(',');
      out += std::to_string(buckets[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void Registry::write(const std::string& path) const {
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  write_text_file(path, json ? json_dump() : prometheus_text());
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

// --- Chrome trace export ----------------------------------------------------

std::string chrome_trace_json(std::vector<TraceEvent> events,
                              const std::map<int, std::string>& process_names) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  // Rebase timestamps so microsecond doubles keep sub-ns precision even
  // with steady-clock epochs far from zero.
  const std::int64_t base = events.empty() ? 0 : events.front().ts_ns;

  std::string out = "[";
  bool first = true;
  for (const auto& [pid, pname] : process_names) {
    if (!first) out.push_back(',');
    first = false;
    out += "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":";
    escape_json(pname, out);
    out += "}}";
  }
  char buf[64];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (!first) out.push_back(',');
    first = false;
    out += "\n{\"name\":";
    escape_json(ev.name, out);
    out += ",\"cat\":";
    escape_json(ev.cat.empty() ? std::string("peachy") : ev.cat, out);
    out += ",\"ph\":\"";
    out.push_back(static_cast<char>(ev.ph));
    out += "\",\"ts\":";
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(ev.ts_ns - base) / 1e3);
    out += buf;
    if (ev.ph == TraceEvent::Phase::kComplete) {
      std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ev.dur_ns) / 1e3);
      out += ",\"dur\":";
      out += buf;
    }
    if (ev.ph == TraceEvent::Phase::kInstant) out += ",\"s\":\"t\"";
    out += ",\"pid\":" + std::to_string(ev.pid) +
           ",\"tid\":" + std::to_string(ev.tid);
    if (!ev.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t a = 0; a < ev.args.size(); ++a) {
        if (a) out.push_back(',');
        escape_json(ev.args[a].first, out);
        out.push_back(':');
        out += std::to_string(ev.args[a].second);
      }
      out.push_back('}');
    }
    out.push_back('}');
  }
  out += "\n]\n";
  return out;
}

void write_chrome_trace(const std::string& path, std::vector<TraceEvent> events,
                        const std::map<int, std::string>& process_names) {
  write_text_file(path, chrome_trace_json(std::move(events), process_names));
}

// --- Tracer -----------------------------------------------------------------

std::vector<Tracer::OpenSpan>& Tracer::span_stack() {
  thread_local std::vector<OpenSpan> stack;
  return stack;
}

Tracer::Tracer(int max_lanes) : lanes_(static_cast<std::size_t>(max_lanes)) {
  PEACHY_REQUIRE(max_lanes >= 1, "tracer needs >= 1 lane, got " << max_lanes);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

int Tracer::lane_id_for_this_thread() {
  return this_thread_id() % static_cast<int>(lanes_.size());
}

Tracer::Lane& Tracer::lane_for_this_thread() {
  return lanes_[static_cast<std::size_t>(lane_id_for_this_thread())];
}

void Tracer::append(TraceEvent ev) {
  Lane& lane = lane_for_this_thread();
  std::lock_guard lock(lane.mutex);
  lane.events.push_back(std::move(ev));
}

void Tracer::begin(std::string name, std::string cat) {
  if (!enabled()) return;
  span_stack().push_back(
      OpenSpan{this, std::move(name), std::move(cat), now_ns()});
}

void Tracer::end(std::vector<std::pair<std::string, std::int64_t>> args) {
  std::vector<OpenSpan>& stack = span_stack();
  // A begin() skipped while disabled leaves nothing to close; a span opened
  // while enabled still closes cleanly if the gate flipped off meanwhile.
  if (stack.empty() || stack.back().tracer != this) return;
  OpenSpan span = std::move(stack.back());
  stack.pop_back();
  TraceEvent ev;
  ev.name = std::move(span.name);
  ev.cat = std::move(span.cat);
  ev.ph = TraceEvent::Phase::kComplete;
  ev.ts_ns = span.start_ns;
  ev.dur_ns = now_ns() - span.start_ns;
  ev.tid = lane_id_for_this_thread();
  ev.args = std::move(args);
  append(std::move(ev));
}

void Tracer::complete(std::string name, std::string cat, std::int64_t start_ns,
                      std::int64_t end_ns,
                      std::vector<std::pair<std::string, std::int64_t>> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.ph = TraceEvent::Phase::kComplete;
  ev.ts_ns = start_ns;
  ev.dur_ns = end_ns - start_ns;
  ev.tid = lane_id_for_this_thread();
  ev.args = std::move(args);
  append(std::move(ev));
}

void Tracer::instant(std::string name, std::string cat,
                     std::vector<std::pair<std::string, std::int64_t>> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.ph = TraceEvent::Phase::kInstant;
  ev.ts_ns = now_ns();
  ev.tid = lane_id_for_this_thread();
  ev.args = std::move(args);
  append(std::move(ev));
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> all;
  for (const Lane& lane : lanes_) {
    std::lock_guard lock(lane.mutex);
    all.insert(all.end(), lane.events.begin(), lane.events.end());
  }
  return all;
}

std::size_t Tracer::total_events() const {
  std::size_t total = 0;
  for (const Lane& lane : lanes_) {
    std::lock_guard lock(lane.mutex);
    total += lane.events.size();
  }
  return total;
}

void Tracer::clear() {
  for (Lane& lane : lanes_) {
    std::lock_guard lock(lane.mutex);
    lane.events.clear();
  }
}

// --- Span -------------------------------------------------------------------

Span::Span(std::string name, std::string cat) : active_(enabled()) {
  if (active_) Tracer::global().begin(std::move(name), std::move(cat));
}

Span::~Span() { close(); }

void Span::arg(std::string key, std::int64_t value) {
  if (active_) args_.emplace_back(std::move(key), value);
}

void Span::close() {
  if (!active_) return;
  active_ = false;
  Tracer::global().end(std::move(args_));
}

}  // namespace peachy::obs
