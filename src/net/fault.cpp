#include "net/fault.hpp"

#include <sstream>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace peachy::net {

std::string FaultPlan::encode() const {
  std::ostringstream os;
  os << seed << ":" << drop << ":" << duplicate << ":" << delay << ":"
     << delay_ms << ":" << sever_after;
  return os.str();
}

FaultPlan FaultPlan::decode(const std::string& text) {
  FaultPlan plan;
  std::istringstream is(text);
  char c = 0;
  is >> plan.seed >> c >> plan.drop >> c >> plan.duplicate >> c >>
      plan.delay >> c >> plan.delay_ms >> c >> plan.sever_after;
  PEACHY_REQUIRE(!is.fail(), "bad fault plan encoding \"" << text << "\"");
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, int src, int dst)
    : plan_(plan) {
  std::uint64_t s = plan.seed;
  stream_ = splitmix64(s) ^ (static_cast<std::uint64_t>(src) << 32 |
                             static_cast<std::uint32_t>(dst));
}

FaultInjector::Decision FaultInjector::next() {
  const std::uint64_t index = frame_++;
  Decision d;
  if (!plan_.active()) return d;
  if (plan_.sever_after >= 0 &&
      index >= static_cast<std::uint64_t>(plan_.sever_after)) {
    d.sever = true;
    // The transport closes the link on the first sever; count the event
    // once even if it (defensively) asks again.
    if (index == static_cast<std::uint64_t>(plan_.sever_after))
      ++counters_.severed;
    return d;
  }
  // One hash per fault class so the probabilities are independent; the
  // state is (stream, frame index), never wall time or thread order.
  std::uint64_t h = stream_ + index * 0x9e3779b97f4a7c15ULL;
  const auto roll = [&h] {
    return static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
  };
  if (roll() < plan_.drop) {
    d.drop = true;
    ++counters_.dropped;
    return d;  // a dropped frame is neither delayed nor duplicated
  }
  if (roll() < plan_.duplicate) {
    d.duplicate = true;
    ++counters_.duplicated;
  }
  if (roll() < plan_.delay) {
    d.delay_ms = plan_.delay_ms;
    ++counters_.delayed;
  }
  return d;
}

}  // namespace peachy::net
