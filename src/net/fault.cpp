#include "net/fault.hpp"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace peachy::net {

namespace {

// The encoding travels through one environment variable into exec'd
// workers, so decode() must treat it as untrusted input: a truncated or
// hand-edited plan has to fail loudly instead of silently zeroing fields
// (a worker running with *no* faults when the launcher injects them would
// desynchronize every seeded-fault test).

[[noreturn]] void bad_plan(const std::string& text, const std::string& why) {
  throw Error("bad fault plan encoding \"" + text + "\": " + why);
}

std::vector<std::string> split_fields(const std::string& text) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t colon = text.find(':', start);
    if (colon == std::string::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
}

template <typename Int>
Int parse_int(const std::string& text, const std::string& field,
              const std::string& value) {
  Int out{};
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size())
    bad_plan(text, field + " \"" + value + "\" is not an integer");
  return out;
}

double parse_probability(const std::string& text, const std::string& field,
                         const std::string& value) {
  if (value.empty()) bad_plan(text, field + " is empty");
  errno = 0;
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (errno != 0 || end != value.c_str() + value.size())
    bad_plan(text, field + " \"" + value + "\" is not a number");
  if (!(p >= 0.0 && p <= 1.0))
    bad_plan(text, field + " " + value + " is outside [0, 1]");
  return p;
}

}  // namespace

std::string FaultPlan::encode() const {
  std::ostringstream os;
  os.precision(17);  // doubles survive the env-var round trip bit-exactly
  os << seed << ":" << drop << ":" << duplicate << ":" << delay << ":"
     << delay_ms << ":" << sever_after;
  return os.str();
}

FaultPlan FaultPlan::decode(const std::string& text) {
  const std::vector<std::string> fields = split_fields(text);
  if (fields.size() != 6)
    bad_plan(text, "expected 6 ':'-separated fields "
                   "(seed:drop:dup:delay:delay_ms:sever_after), got " +
                       std::to_string(fields.size()));
  FaultPlan plan;
  plan.seed = parse_int<std::uint64_t>(text, "seed", fields[0]);
  plan.drop = parse_probability(text, "drop probability", fields[1]);
  plan.duplicate = parse_probability(text, "duplicate probability", fields[2]);
  plan.delay = parse_probability(text, "delay probability", fields[3]);
  plan.delay_ms = parse_int<int>(text, "delay_ms", fields[4]);
  if (plan.delay_ms < 0)
    bad_plan(text, "delay_ms " + fields[4] + " is negative");
  plan.sever_after = parse_int<std::int64_t>(text, "sever_after", fields[5]);
  if (plan.sever_after < -1)
    bad_plan(text, "sever_after " + fields[5] + " must be >= -1");
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, int src, int dst)
    : plan_(plan) {
  std::uint64_t s = plan.seed;
  stream_ = splitmix64(s) ^ (static_cast<std::uint64_t>(src) << 32 |
                             static_cast<std::uint32_t>(dst));
}

FaultInjector::Decision FaultInjector::next() {
  const std::uint64_t index = frame_++;
  Decision d;
  if (!plan_.active()) return d;
  if (plan_.sever_after >= 0 &&
      index >= static_cast<std::uint64_t>(plan_.sever_after)) {
    d.sever = true;
    // The transport closes the link on the first sever; count the event
    // once even if it (defensively) asks again.
    if (index == static_cast<std::uint64_t>(plan_.sever_after))
      ++counters_.severed;
    return d;
  }
  // One hash per fault class so the probabilities are independent; the
  // state is (stream, frame index), never wall time or thread order.
  std::uint64_t h = stream_ + index * 0x9e3779b97f4a7c15ULL;
  const auto roll = [&h] {
    return static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
  };
  if (roll() < plan_.drop) {
    d.drop = true;
    ++counters_.dropped;
    // A dropped frame is neither delayed nor duplicated — and in the
    // windowed transport it must not be: a dropped frame's only wire copy
    // is the retransmission, which is judged exactly zero times.
    return d;
  }
  if (roll() < plan_.duplicate) {
    d.duplicate = true;
    ++counters_.duplicated;
  }
  if (roll() < plan_.delay) {
    d.delay_ms = plan_.delay_ms;
    ++counters_.delayed;
  }
  return d;
}

}  // namespace peachy::net
