// TcpTransport: MPI-shaped point-to-point messaging over real sockets.
//
// Topology: a full mesh of loopback TCP connections, wired up through the
// rendezvous (net/rendezvous.hpp) — rank i dials every j < i and accepts
// every j > i, with a versioned HELLO/HELLO_ACK handshake on each link.
//
// Protocol: sliding window with cumulative acks. send() assigns the frame a
// per-connection sequence number, copies the payload once into a retransmit
// slot, and returns as soon as the window admits it — up to
// TcpOptions::window_frames frames ride unacked per peer, so a burst of
// sends costs one RTT, not one RTT each. Frames are *staged*, not written
// inline: the reader thread (or the next recv()/window-full wait) flushes
// every staged frame for a peer as one scatter-gather writev batch — small
// frames coalesce into a single syscall, and neither headers nor payloads
// are ever copied into an intermediate contiguous buffer.
//
// Every post-handshake socket write is non-blocking (MSG_DONTWAIT): bytes
// the kernel will not take right now are queued in a per-peer outbox that
// the reader thread drains on POLLOUT. No thread ever parks inside a
// socket write, so the reader always returns to draining inbound frames —
// which is what makes two ranks blasting bursts larger than the kernel
// socket buffers at each other drain instead of deadlock (each side's
// reader keeps emptying its receive buffer, freeing the other side's
// writes; backpressure surfaces as outbox growth bounded by the window,
// never as a blocked thread).
//
// Acks are cumulative (FrameHeader::ack covers every seq below it) and
// delayed: the receiver drains a burst of readable frames, then answers
// with a single ACK — or none at all when an outgoing DATA frame piggybacks
// the ack first (kFlagCarriesAck). Loss recovery is one retransmit timer
// per peer, armed for the oldest unacked frame: on expiry every unacked
// frame is rewritten in one batch (go-back-N; the receiver's reassembly
// buffer absorbs the overlap), with exponential backoff and the attempt
// counter reset whenever the cumulative ack makes progress. The receive
// path delivers in order, parks out-of-order frames in a per-peer
// reassembly map, and drops already-delivered duplicates — injected drops,
// duplicates, and delays (net/fault.hpp) are absorbed by the protocol
// instead of corrupting the stream. window_frames = 1 degenerates to
// stop-and-wait: one frame in flight, one ack per frame, same byte stream.
//
// A background reader thread demultiplexes every peer socket into
// per-(source, tag) FIFO channels — the same matching semantics as the
// in-process mailboxes — applies acks to blocked senders, flushes staged
// frames (senders poke it through a pipe), and runs the retransmit timers,
// which is what keeps "everyone sends, then everyone receives" exchange
// patterns deadlock-free.
//
// Failure semantics: EOF after a GOODBYE frame is a graceful shutdown; EOF
// without one, a reset, a CRC mismatch, or an exhausted retransmit budget
// marks the peer dead and every blocked or future send()/recv() against it
// throws PeerDied naming both ends. send() returning only promises the
// frame is in the window — shutdown() confirms delivery by draining every
// unacked frame before saying GOODBYE, and when that drain exceeds
// goodbye_timeout_ms it does not fail silently: the peers still holding
// unacked frames are marked dead (subsequent sends throw PeerDied) and the
// loss is counted in Stats::frames_abandoned / net.frames_abandoned.
// Nothing hangs: every wait carries a configurable timeout. With
// TcpOptions::heartbeat_ms > 0 the reader thread additionally PINGs every
// idle link and suspects a peer that has been silent past the suspicion
// timeout — so a wedged (not closed) peer is detected even when no
// application data is in flight. PINGs ride outside the data sequence
// space, are never acked, and bypass the fault injector, so enabling them
// does not perturb seeded-fault determinism.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/fault.hpp"
#include "net/rendezvous.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "obs/cluster.hpp"

namespace peachy::net {

/// Timeouts, window geometry, retry policy, and fault plan for one TCP world.
struct TcpOptions {
  std::string host = "127.0.0.1";
  int connect_timeout_ms = 10000;   ///< rendezvous + mesh dial budget
  int recv_timeout_ms = 30000;      ///< application-level recv wait
  int ack_timeout_ms = 100;         ///< initial retransmit timer
  int max_retries = 8;              ///< retransmit passes (backoff doubles)
  int goodbye_timeout_ms = 2000;    ///< graceful-shutdown drain
  int heartbeat_ms = 0;             ///< >0: PING every idle link this often
  int suspicion_timeout_ms = 0;     ///< silence budget; 0 = 4 * heartbeat_ms
  /// >0: run Cristian-style clock probes against every peer this often
  /// (an initial burst goes out faster so short runs still converge).
  /// Probes ride the PING/PONG path: outside the data sequence space,
  /// never acked, invisible to the fault injector. Feeds clock_estimates()
  /// and the net.clock_offset_us gauges for offset-corrected trace merges.
  int clock_sync_ms = 0;
  int window_frames = 32;           ///< unacked frames per peer; 1 = stop-and-wait
  std::size_t coalesce_bytes = 64 * 1024;  ///< staged bytes that force an
                                           ///< inline flush from the sender
  /// First sequence number on every connection (both directions, all
  /// links). A test hook: start near UINT64_MAX to prove the window
  /// bookkeeping survives a seq wrap (see wire.hpp seq_before()).
  std::uint64_t first_seq = 0;
  FaultPlan fault;                  ///< inactive unless seed != 0
};

class TcpTransport final : public Transport {
 public:
  /// Connects the full mesh; blocks until every link is handshaken.
  TcpTransport(int rank, int world, int rendezvous_port,
               const TcpOptions& options);
  ~TcpTransport() override;

  int rank() const override { return rank_; }
  int size() const override { return world_; }
  using Transport::send;  // the span overload forwards to the pointer one
  using Transport::recv;  // the no-info overload forwards to the full one
  void send(int dest, int tag, const void* data, std::size_t bytes) override;
  std::vector<std::byte> recv(int src, int tag, MsgInfo* info) override;
  bool try_recv(int src, int tag, std::vector<std::byte>& out,
                MsgInfo* info = nullptr) override;
  void shutdown() override;

  /// Frame-level counters, aggregated over all of this rank's connections.
  struct Stats {
    std::uint64_t retransmits = 0;
    std::uint64_t window_stalls = 0;  ///< sends that blocked on a full window
    std::uint64_t acks_sent = 0;      ///< cumulative acks, pure + piggybacked
    std::uint64_t heartbeats_sent = 0;
    /// Frames still unacked when shutdown()'s bounded drain expired — each
    /// one is a send() whose delivery was never confirmed.
    std::uint64_t frames_abandoned = 0;
    FaultInjector::Counters fault;
  };
  Stats stats() const;

  /// The still-open rendezvous connection (spawned workers report over it).
  const Socket& rendezvous_socket() const { return session_.sock; }

  /// One peer's Cristian clock-offset estimate (peer_clock − local_clock).
  struct ClockEstimate {
    bool valid = false;
    std::int64_t offset_ns = 0;
    std::int64_t min_rtt_ns = 0;
    std::uint64_t samples = 0;
  };
  /// Estimates for every peer with at least one accepted probe. Only
  /// populated when TcpOptions::clock_sync_ms > 0 — rank 0's trace merger
  /// uses these to rebase worker timestamps onto its own clock.
  std::map<int, ClockEstimate> clock_estimates() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// One received message plus its out-of-band metadata, queued on a
  /// (src, tag) channel until recv()/try_recv() claims it.
  struct Delivery {
    std::vector<std::byte> payload;
    MsgInfo info;
  };

  /// One window slot: the single copy of an in-flight payload, kept until
  /// the cumulative ack passes it. Header bytes are encoded at write time
  /// (each write stamps the current piggyback ack) under the peer's
  /// write_mutex; a shared_ptr keeps the buffers alive when an ack pops the
  /// slot while a writev batch still references it.
  struct TxFrame {
    FrameHeader h;                   // len + crc fixed at stage time
    std::vector<std::byte> payload;
    std::byte hdr[kHeaderBytes];
    // Trace-context trailer (kFlagCarriesCtx): rides after the payload on
    // every write of this frame, retransmissions and injected duplicates
    // included, so dedup at the receiver keeps exactly one copy of the
    // context along with the one delivered payload.
    std::byte ctx[kCtxTrailerBytes];
    bool has_ctx = false;
    Clock::time_point staged_at{};
    Clock::time_point hold_until{};  // injected delay: not on the wire before
    bool write_twice = false;        // injected duplicate (first write only)
  };
  using TxFramePtr = std::shared_ptr<TxFrame>;

  struct Peer {
    Socket sock;
    std::unique_ptr<FaultInjector> fault;
    std::mutex write_mutex;  // serializes every socket write (flush, acks,
                             // retransmits, control frames); never held
                             // across a blocking syscall — writes are
                             // MSG_DONTWAIT with the overflow queued below
    std::mutex send_mutex;   // serializes send(): seq assignment + injector
                             // judgment happen in seq order
    std::uint64_t send_seq = 0;  // guarded by send_mutex

    // Backpressure overflow — guarded by write_mutex. Bytes (in wire order)
    // that the kernel's send buffer refused; the reader drains them on
    // POLLOUT. Bounded by the window: at most window_frames framed payloads
    // plus control frames per peer.
    std::vector<std::byte> outbox;
    std::size_t outbox_off = 0;    // consumed prefix of outbox
    bool outbox_pending = false;   // mirror for the poll set — guarded by mu_

    // Sender window state — guarded by the transport-wide mu_:
    std::deque<TxFramePtr> unacked;  // oldest first; size caps the window
    std::deque<TxFramePtr> staged;   // admitted, not yet on the wire
    std::deque<TxFramePtr> held;     // injector-delayed, not yet due
    std::size_t staged_bytes = 0;
    int attempts = 0;                // retransmit passes since last progress
    Clock::time_point retransmit_at{};

    // Receiver state — guarded by mu_:
    std::uint64_t recv_next = 0;      // next in-order inbound seq
    std::uint64_t last_ack_sent = 0;  // cumulative ack the peer has seen
    bool ack_pending = false;
    std::map<std::uint64_t, std::pair<int, Delivery>>
        reassembly;  // out-of-order frames: seq -> (tag, delivery)

    // Clock-offset estimate for this peer — guarded by mu_.
    obs::cluster::OffsetEstimator clock_est;

    bool goodbye = false;
    bool dead = false;
    std::string why;
    // Reader-thread-only (never locked): inbound reassembly. Frames arrive
    // in arbitrary fragments from non-blocking reads; bytes accumulate here
    // until a whole header+payload is present. Mirrors the outbox on the
    // read side — the reader never parks inside a recv mid-frame, so it
    // always comes back around to drain its own outbox.
    std::vector<std::byte> rx_buf;
    // Reader-thread-only (never locked): heartbeat liveness bookkeeping.
    Clock::time_point last_rx{};
    Clock::time_point last_ping_tx{};
    bool suspected = false;          // first suspicion probes, second kills
    Clock::time_point suspect_since{};
    // Reader-thread-only (never locked): clock-probe cadence.
    Clock::time_point last_probe_tx{};
    int probes_sent = 0;
  };

  Peer& peer(int r) { return *peers_[static_cast<std::size_t>(r)]; }
  /// Requires peer(r).write_mutex held. Hands the iovecs to the kernel
  /// without blocking and copies whatever it refused into the peer's
  /// outbox (order preserved); throws Error only on a broken connection.
  /// `iov` is clobbered.
  void write_or_queue(int r, struct iovec* iov, std::size_t iovcnt);
  /// POLLOUT service: writes queued outbox bytes until drained or the
  /// kernel buffer fills again; marks the peer dead on a write error.
  void drain_outbox(int r);
  void write_frame(int r, const std::vector<std::byte>& frame);
  /// Writes every staged frame for `r` as one writev batch (piggybacking
  /// the current cumulative ack). Safe from any thread; no-op when nothing
  /// is staged.
  void flush_peer(int r);
  void flush_all();
  /// Sends a pure cumulative ACK when one is still owed (no DATA carried it).
  void send_pure_ack(int r);
  /// Expired retransmit timer: rewrites every due unacked frame, or kills
  /// the peer once the attempt budget is gone.
  void retransmit_pass(int r, Clock::time_point now);
  /// Moves injector-delayed frames whose hold time has passed into staging.
  void release_held(int r, Clock::time_point now);
  /// Applies a cumulative ack from `src` (pure or piggybacked).
  void apply_ack(int src, std::uint64_t ack);
  /// Requires peer(r).write_mutex held. Stamps `ack` into every header and
  /// writes the whole batch as one scatter-gather call; marks the peer dead
  /// and returns false on a write error.
  bool write_batch(int r, const std::vector<TxFramePtr>& batch,
                   std::uint64_t ack);
  void wake_reader();
  /// Milliseconds until the nearest retransmit/hold deadline, capped at
  /// `cap`.
  int next_deadline_ms(int cap);
  void reader_loop();
  void heartbeat_pass();
  /// Sends due clock probes (TcpOptions::clock_sync_ms cadence, with a
  /// fast initial burst per peer so short runs still converge).
  void clock_pass();
  void handle_frame(int src, const FrameHeader& h,
                    std::vector<std::byte> payload,
                    const std::byte* ctx_trailer);
  /// `graceful` distinguishes an orderly GOODBYE-then-EOF (no flight dump)
  /// from a real death (flight-recorder post-mortem is written).
  void mark_dead(int src, const std::string& why, bool graceful = false);
  [[noreturn]] void throw_peer_dead(int peer_rank);

  int rank_;
  int world_;
  TcpOptions opt_;
  Socket listen_;
  RendezvousSession session_;
  std::vector<std::unique_ptr<Peer>> peers_;  // [rank_] stays null

  // Channel queues + peer window/liveness state.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::pair<int, int>, std::deque<Delivery>> channels_;
  std::uint64_t retransmits_ = 0;
  std::uint64_t window_stalls_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t frames_abandoned_ = 0;

  std::thread reader_;
  int wake_pipe_[2] = {-1, -1};
  bool stopping_ = false;  // guarded by mu_
  bool shut_down_ = false;
};

}  // namespace peachy::net
