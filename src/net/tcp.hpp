// TcpTransport: MPI-shaped point-to-point messaging over real sockets.
//
// Topology: a full mesh of loopback TCP connections, wired up through the
// rendezvous (net/rendezvous.hpp) — rank i dials every j < i and accepts
// every j > i, with a versioned HELLO/HELLO_ACK handshake on each link.
//
// Protocol: stop-and-wait with per-connection sequence numbers. send()
// frames the payload (header + CRC32), writes it, and blocks until the
// peer's ACK; on timeout it retransmits with exponential backoff and, once
// the retry budget is exhausted, throws PeerDied. The receiver acks every
// DATA frame and drops already-seen sequence numbers, so injected drops and
// duplicates (net/fault.hpp) are absorbed by the protocol instead of
// corrupting the stream. A background reader thread demultiplexes every
// peer socket into per-(source, tag) FIFO channels — the same matching
// semantics as the in-process mailboxes — and hands ACKs to blocked
// senders, which is what keeps "everyone sends, then everyone receives"
// exchange patterns deadlock-free.
//
// Failure semantics: EOF after a GOODBYE frame is a graceful shutdown; EOF
// without one, a reset, a CRC mismatch, or an exhausted retry budget marks
// the peer dead and every blocked or future send()/recv() against it
// throws PeerDied naming both ends. Nothing hangs: every wait carries a
// configurable timeout. With TcpOptions::heartbeat_ms > 0 the reader thread
// additionally PINGs every idle link and suspects a peer that has been
// silent past the suspicion timeout — so a wedged (not closed) peer is
// detected even when no application data is in flight. PINGs ride outside
// the data sequence space, are never acked, and bypass the fault injector,
// so enabling them does not perturb seeded-fault determinism.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/fault.hpp"
#include "net/rendezvous.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"

namespace peachy::net {

/// Timeouts, retry policy, and fault plan for one TCP world.
struct TcpOptions {
  std::string host = "127.0.0.1";
  int connect_timeout_ms = 10000;   ///< rendezvous + mesh dial budget
  int recv_timeout_ms = 30000;      ///< application-level recv wait
  int ack_timeout_ms = 100;         ///< initial retransmit timer
  int max_retries = 8;              ///< retransmissions (backoff doubles)
  int goodbye_timeout_ms = 2000;    ///< graceful-shutdown drain
  int heartbeat_ms = 0;             ///< >0: PING every idle link this often
  int suspicion_timeout_ms = 0;     ///< silence budget; 0 = 4 * heartbeat_ms
  FaultPlan fault;                  ///< inactive unless seed != 0
};

class TcpTransport final : public Transport {
 public:
  /// Connects the full mesh; blocks until every link is handshaken.
  TcpTransport(int rank, int world, int rendezvous_port,
               const TcpOptions& options);
  ~TcpTransport() override;

  int rank() const override { return rank_; }
  int size() const override { return world_; }
  void send(int dest, int tag, const void* data, std::size_t bytes) override;
  std::vector<std::byte> recv(int src, int tag) override;
  void shutdown() override;

  /// Frame-level counters, aggregated over all of this rank's connections.
  struct Stats {
    std::uint64_t retransmits = 0;
    std::uint64_t heartbeats_sent = 0;
    FaultInjector::Counters fault;
  };
  Stats stats() const;

  /// The still-open rendezvous connection (spawned workers report over it).
  const Socket& rendezvous_socket() const { return session_.sock; }

 private:
  struct Peer {
    Socket sock;
    std::unique_ptr<FaultInjector> fault;
    std::mutex write_mutex;       // sender + reader-thread acks share it
    std::uint64_t send_seq = 0;   // guarded by send_mutex
    std::mutex send_mutex;        // serializes send() per peer
    // Guarded by the transport-wide state mutex:
    std::uint64_t acked = 0;      // data frames acked by this peer
    std::uint64_t recv_seq = 0;   // next expected inbound data seq
    bool goodbye = false;
    bool dead = false;
    std::string why;
    // Reader-thread-only (never locked): heartbeat liveness bookkeeping.
    std::chrono::steady_clock::time_point last_rx{};
    std::chrono::steady_clock::time_point last_ping_tx{};
  };

  Peer& peer(int r) { return *peers_[static_cast<std::size_t>(r)]; }
  void write_frame(Peer& p, const std::vector<std::byte>& frame);
  void reader_loop();
  void heartbeat_pass();
  void handle_frame(int src, const FrameHeader& h,
                    std::vector<std::byte> payload);
  void mark_dead(int src, const std::string& why);
  [[noreturn]] void throw_peer_dead(int peer_rank);

  int rank_;
  int world_;
  TcpOptions opt_;
  Socket listen_;
  RendezvousSession session_;
  std::vector<std::unique_ptr<Peer>> peers_;  // [rank_] stays null

  // Channel queues + peer liveness/ack state.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::pair<int, int>, std::deque<std::vector<std::byte>>> channels_;
  std::uint64_t retransmits_ = 0;
  std::uint64_t heartbeats_sent_ = 0;

  std::thread reader_;
  int wake_pipe_[2] = {-1, -1};
  bool stopping_ = false;  // guarded by mu_
  bool shut_down_ = false;
};

}  // namespace peachy::net
