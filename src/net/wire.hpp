// Wire protocol for the peachy socket transport (DESIGN.md "Transports").
//
// Every unit on the wire — handshake, data, ack, rendezvous traffic — is one
// *frame*: a fixed 40-byte little-endian header optionally followed by a
// payload. The header is versioned (a connection is refused when the two
// ends disagree) and carries a CRC32 of the payload so corruption is caught
// at the receiver instead of surfacing as a wrong grid cell three layers up.
//
// Layout (offsets in bytes, little-endian):
//   0  u32 magic   "PEAC" (0x43414550 as LE bytes 'P','E','A','C')
//   4  u16 version kWireVersion
//   6  u8  type    FrameType
//   7  u8  flags   FrameFlag bits
//   8  i32 src     sending rank (or rendezvous client rank)
//   12 i32 tag     message tag / handshake destination rank / listen port
//   16 u64 seq     per-connection data sequence number
//   24 u64 ack     cumulative ack: every seq < ack has been received
//                  (valid only when kFlagCarriesAck is set — DATA frames
//                  piggyback it, ACK frames exist for it)
//   32 u32 len     payload bytes following the header
//   36 u32 crc     CRC32 (IEEE) of the payload, 0 when len == 0
//
// v2 replaced v1's echo-this-seq ACK with the cumulative `ack` field: one
// ACK (or any data frame flowing the other way) acknowledges every frame
// below it, which is what lets the sliding-window sender keep a whole
// window in flight and collapse per-frame timers into one per-peer timer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/error.hpp"

namespace peachy::net {

inline constexpr std::uint16_t kWireVersion = 2;
inline constexpr std::size_t kHeaderBytes = 40;
/// Frames larger than this are rejected as corrupt (a 4096x4096 u32 grid
/// gathered in one message is 64 MiB; leave headroom above that).
inline constexpr std::uint32_t kMaxPayloadBytes = 256u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,     ///< mesh handshake: src=connector rank, tag=acceptor rank
  kHelloAck = 2,  ///< handshake accepted
  kData = 3,      ///< application message: src, tag, seq, payload
  kAck = 4,       ///< pure cumulative ack (see FrameHeader::ack)
  kGoodbye = 5,   ///< graceful close; EOF after this is not a peer death
  kRegister = 6,  ///< rendezvous: src=rank, tag=peer listen port
  kTable = 7,     ///< rendezvous reply: payload = world_size u32 ports
  kResult = 8,    ///< spawned worker -> launcher: stats + status + result
  kPing = 9,      ///< heartbeat; proves liveness. No payload in heartbeat
                  ///< use; clock probes carry an 8-byte origin timestamp
  kPong = 10,     ///< clock-probe reply: payload = origin echo + peer now_ns
  kJobRequest = 11,  ///< peachyctl -> peachyd: tag = svc request op
  kJobReply = 12,    ///< peachyd -> peachyctl: tag = svc status code
};

/// FrameHeader::flags bits.
enum FrameFlag : std::uint8_t {
  /// The `ack` field is meaningful: everything below it has been received.
  /// Set on every ACK frame and piggybacked on outgoing DATA frames.
  kFlagCarriesAck = 0x01,
  /// A 16-byte trace-context trailer (trace_id u64, parent span_id u64,
  /// little-endian) follows the payload. The trailer rides *after* the
  /// payload and outside `len`/`crc` — CRC semantics of every existing
  /// frame are untouched, and a v2 receiver that knows the flag consumes
  /// it without any header-layout change. Only DATA frames carry it.
  kFlagCarriesCtx = 0x02,
};

/// Byte count of the kFlagCarriesCtx trailer.
inline constexpr std::size_t kCtxTrailerBytes = 16;

struct FrameHeader {
  std::uint16_t version = kWireVersion;
  FrameType type = FrameType::kData;
  std::uint8_t flags = 0;
  std::int32_t src = 0;
  std::int32_t tag = 0;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
};

/// Serial-number comparison (RFC 1982 style): true when `a` precedes `b`
/// even across a u64 wrap. The window arithmetic uses this everywhere so
/// sequence numbers starting near the top of the space (see
/// TcpOptions::first_seq) behave identically to ones starting at zero.
inline bool seq_before(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::int64_t>(a - b) < 0;
}

/// CRC32 (IEEE 802.3, polynomial 0xEDB88320, reflected).
std::uint32_t crc32(const void* data, std::size_t bytes);

/// Serializes `h` into exactly kHeaderBytes at `out`.
void encode_header(const FrameHeader& h, std::byte* out);

/// Parses a header; throws peachy::Error on bad magic, version mismatch
/// (the message names both versions), unknown type, or oversized len.
FrameHeader decode_header(const std::byte* in);

/// Header + payload in one contiguous buffer (one write syscall per frame).
std::vector<std::byte> encode_frame(FrameHeader h, const void* payload,
                                    std::size_t bytes);

class Socket;

/// Writes one frame (header + payload) in a single send.
void send_frame(const Socket& sock, FrameHeader h, const void* payload = nullptr,
                std::size_t bytes = 0);

/// Reads one frame and verifies the payload CRC. Returns false on clean EOF
/// before the header; throws on timeout, torn frames, or CRC mismatch.
/// A kFlagCarriesCtx trailer is consumed from the stream and stored in
/// `ctx_trailer` when given (else discarded), so callers that ignore trace
/// contexts — rendezvous, handshakes, tests' fake peers — never desync.
bool recv_frame(const Socket& sock, FrameHeader& header,
                std::vector<std::byte>& payload, int timeout_ms,
                std::byte (*ctx_trailer)[kCtxTrailerBytes] = nullptr);

// Little-endian scalar (de)serialization for frame payloads (rendezvous
// tables, worker reports, result blobs).
void append_u32(std::vector<std::byte>& out, std::uint32_t v);
void append_u64(std::vector<std::byte>& out, std::uint64_t v);
void append_bytes(std::vector<std::byte>& out, const void* data,
                  std::size_t bytes);
/// Reads advance `p`; running past `end` throws (truncated payload).
std::uint32_t read_u32(const std::byte*& p, const std::byte* end);
std::uint64_t read_u64(const std::byte*& p, const std::byte* end);

}  // namespace peachy::net
