#include "net/wire.hpp"

#include <array>
#include <cstring>

#include "net/socket.hpp"

namespace peachy::net {

namespace {

constexpr std::uint32_t kMagic = 0x43414550u;  // "PEAC" little-endian

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int b = 0; b < 8; ++b)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u16(std::byte* p, std::uint16_t v) {
  p[0] = static_cast<std::byte>(v & 0xff);
  p[1] = static_cast<std::byte>(v >> 8);
}
void put_u32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
}
void put_u64(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
}
std::uint16_t get_u16(const std::byte* p) {
  return static_cast<std::uint16_t>(std::to_integer<std::uint16_t>(p[0]) |
                                    std::to_integer<std::uint16_t>(p[1]) << 8);
}
std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = v << 8 | std::to_integer<std::uint32_t>(p[i]);
  return v;
}
std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | std::to_integer<std::uint64_t>(p[i]);
  return v;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i)
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void encode_header(const FrameHeader& h, std::byte* out) {
  put_u32(out + 0, kMagic);
  put_u16(out + 4, h.version);
  out[6] = static_cast<std::byte>(h.type);
  out[7] = static_cast<std::byte>(h.flags);
  put_u32(out + 8, static_cast<std::uint32_t>(h.src));
  put_u32(out + 12, static_cast<std::uint32_t>(h.tag));
  put_u64(out + 16, h.seq);
  put_u64(out + 24, h.ack);
  put_u32(out + 32, h.len);
  put_u32(out + 36, h.crc);
}

FrameHeader decode_header(const std::byte* in) {
  PEACHY_REQUIRE(get_u32(in) == kMagic,
                 "bad frame magic 0x" << std::hex << get_u32(in)
                                      << " (not a peachy_net peer?)");
  FrameHeader h;
  h.version = get_u16(in + 4);
  PEACHY_REQUIRE(h.version == kWireVersion,
                 "wire protocol version mismatch: peer speaks v" << h.version
                     << ", this build speaks v" << kWireVersion);
  const auto type = std::to_integer<std::uint8_t>(in[6]);
  PEACHY_REQUIRE(type >= 1 && type <= 12, "unknown frame type " << int{type});
  h.type = static_cast<FrameType>(type);
  h.flags = std::to_integer<std::uint8_t>(in[7]);
  h.src = static_cast<std::int32_t>(get_u32(in + 8));
  h.tag = static_cast<std::int32_t>(get_u32(in + 12));
  h.seq = get_u64(in + 16);
  h.ack = get_u64(in + 24);
  h.len = get_u32(in + 32);
  PEACHY_REQUIRE(h.len <= kMaxPayloadBytes,
                 "frame payload of " << h.len << " bytes exceeds the "
                                     << kMaxPayloadBytes << "-byte cap");
  h.crc = get_u32(in + 36);
  return h;
}

std::vector<std::byte> encode_frame(FrameHeader h, const void* payload,
                                    std::size_t bytes) {
  PEACHY_REQUIRE(bytes <= kMaxPayloadBytes,
                 "payload of " << bytes << " bytes exceeds the "
                               << kMaxPayloadBytes << "-byte cap");
  h.len = static_cast<std::uint32_t>(bytes);
  h.crc = bytes ? crc32(payload, bytes) : 0;
  std::vector<std::byte> frame(kHeaderBytes + bytes);
  encode_header(h, frame.data());
  if (bytes) std::memcpy(frame.data() + kHeaderBytes, payload, bytes);
  return frame;
}

void send_frame(const Socket& sock, FrameHeader h, const void* payload,
                std::size_t bytes) {
  const std::vector<std::byte> frame = encode_frame(h, payload, bytes);
  sock.send_all(frame.data(), frame.size());
}

bool recv_frame(const Socket& sock, FrameHeader& header,
                std::vector<std::byte>& payload, int timeout_ms,
                std::byte (*ctx_trailer)[kCtxTrailerBytes]) {
  std::byte raw[kHeaderBytes];
  if (!sock.recv_all(raw, kHeaderBytes, timeout_ms)) return false;
  header = decode_header(raw);
  payload.resize(header.len);
  if (header.len) {
    PEACHY_REQUIRE(sock.recv_all(payload.data(), header.len, timeout_ms),
                   "connection closed before " << header.len
                                               << "-byte payload arrived");
    PEACHY_REQUIRE(crc32(payload.data(), payload.size()) == header.crc,
                   "payload CRC mismatch on a " << header.len
                                                << "-byte frame (corrupt link?)");
  }
  if (header.flags & kFlagCarriesCtx) {
    std::byte discard[kCtxTrailerBytes];
    std::byte* dst = ctx_trailer ? *ctx_trailer : discard;
    PEACHY_REQUIRE(sock.recv_all(dst, kCtxTrailerBytes, timeout_ms),
                   "connection closed before the trace-context trailer");
  }
  return true;
}

void append_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  put_u32(out.data() + at, v);
}

void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  put_u64(out.data() + at, v);
}

void append_bytes(std::vector<std::byte>& out, const void* data,
                  std::size_t bytes) {
  const std::size_t at = out.size();
  out.resize(at + bytes);
  if (bytes) std::memcpy(out.data() + at, data, bytes);
}

std::uint32_t read_u32(const std::byte*& p, const std::byte* end) {
  PEACHY_REQUIRE(end - p >= 4, "truncated payload (wanted 4 more bytes)");
  const std::uint32_t v = get_u32(p);
  p += 4;
  return v;
}

std::uint64_t read_u64(const std::byte*& p, const std::byte* end) {
  PEACHY_REQUIRE(end - p >= 8, "truncated payload (wanted 8 more bytes)");
  const std::uint64_t v = get_u64(p);
  p += 8;
  return v;
}

}  // namespace peachy::net
