// The transport seam between the mpp runtime and its substrate.
//
// mpp::Comm speaks MPI-shaped point-to-point semantics (blocking send/recv
// with source+tag matching, FIFO per (source, tag) channel); a Transport
// provides exactly that primitive and nothing more — collectives are built
// on top of it in mpp, so they behave identically over every backend.
// Implementations: InprocTransport (mailboxes in one process, zero real
// communication cost) and TcpTransport (length-prefixed CRC-checked frames
// over real sockets; see net/tcp.hpp).
#pragma once

#include <cstddef>
#include <vector>

namespace peachy::net {

class Transport {
 public:
  virtual ~Transport();

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Blocking send of `bytes` to `dest`. Returns once the payload is safely
  /// buffered (inproc) or acknowledged by the peer (tcp). Throws PeerDied
  /// when the destination is gone for good.
  virtual void send(int dest, int tag, const void* data,
                    std::size_t bytes) = 0;

  /// Blocking receive of the next message on the (src, tag) channel.
  /// Throws PeerDied when `src` dies, or Error on timeout (tcp only;
  /// inproc waits forever, like a deadlocked MPI run would).
  virtual std::vector<std::byte> recv(int src, int tag) = 0;

  /// Graceful close: flush goodbyes so peers can tell shutdown from death.
  /// Idempotent; never throws.
  virtual void shutdown() {}
};

}  // namespace peachy::net
