// The transport seam between the mpp runtime and its substrate.
//
// mpp::Comm speaks MPI-shaped point-to-point semantics (blocking send/recv
// with source+tag matching, FIFO per (source, tag) channel); a Transport
// provides exactly that primitive and nothing more — collectives are built
// on top of it in mpp, so they behave identically over every backend.
// Implementations: InprocTransport (mailboxes in one process, zero real
// communication cost) and TcpTransport (length-prefixed CRC-checked frames
// over real sockets; see net/tcp.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace peachy::net {

/// Out-of-band metadata delivered with one received message. Today that is
/// the propagated trace context (obs::cluster): the sender's (trace_id,
/// span_id) pair when the message was sent under an active context.
struct MsgInfo {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool has_ctx = false;
};

class Transport {
 public:
  virtual ~Transport();

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Blocking send of `bytes` to `dest`. Returns once the payload is safely
  /// buffered — copied into a mailbox (inproc) or admitted to the peer's
  /// send window (tcp, which then guarantees delivery or a PeerDied on a
  /// later call). Throws PeerDied when the destination is gone for good.
  virtual void send(int dest, int tag, const void* data,
                    std::size_t bytes) = 0;

  /// Zero-copy lane: same semantics as the pointer overload, but callers
  /// that already hold a contiguous byte view (dmr shuffle blocks, sandpile
  /// halo rows) pass it without materializing an intermediate vector —
  /// the tcp backend frames it with scatter-gather I/O. Derived classes
  /// re-expose this via `using Transport::send;`.
  virtual void send(int dest, int tag, std::span<const std::byte> payload) {
    send(dest, tag, payload.data(), payload.size());
  }

  /// Blocking receive of the next message on the (src, tag) channel.
  /// Throws PeerDied when `src` dies, or Error on timeout (tcp only;
  /// inproc waits forever, like a deadlocked MPI run would). When `info`
  /// is non-null it is filled with the message's trace context (has_ctx
  /// false when the sender attached none).
  virtual std::vector<std::byte> recv(int src, int tag, MsgInfo* info) = 0;

  /// Convenience overload for callers that ignore message metadata.
  std::vector<std::byte> recv(int src, int tag) {
    return recv(src, tag, nullptr);
  }

  /// Non-blocking receive: pops the next (src, tag) message into `out` and
  /// returns true, or returns false when none is queued right now. Never
  /// blocks and never throws on peer death (a dead peer simply stops
  /// producing messages) — the polling primitive the rank-0 telemetry hub
  /// drains worker snapshots with.
  virtual bool try_recv(int src, int tag, std::vector<std::byte>& out,
                        MsgInfo* info = nullptr) = 0;

  /// Graceful close: flush goodbyes so peers can tell shutdown from death.
  /// Idempotent; never throws.
  virtual void shutdown() {}
};

}  // namespace peachy::net
