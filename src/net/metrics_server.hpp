// Live observability endpoint: a minimal single-threaded HTTP/1.0 server
// serving Prometheus text (DESIGN.md "Distributed telemetry"; ROADMAP
// "always-on peachyd" wants exactly this wired to the job service).
//
// Routes (exact path match; a query string is ignored):
//   GET /metrics   -> 200, text/plain; version=0.0.4 (Prometheus exposition)
//   GET /healthz   -> 200, "ok\n"
//   HEAD <either>  -> 200, same headers (incl. Content-Length), no body
//   other paths    -> 404; other methods -> 405; unparseable -> 400
//
// Design: one background thread, blocking accept with a wake pipe, one
// request per connection (Connection: close), bounded request read. The
// provider callback is invoked per scrape, so the text is always current —
// rank 0 of a spawned world plugs in the cluster rollup; a single process
// defaults to its own registry. Deliberately not a general HTTP server:
// no keep-alive, no chunking, no TLS — the minimum that curl, Prometheus,
// and a browser all speak.
//
// The class lives in the net library (it needs net::Socket) but in the obs
// namespace: conceptually it is the export tier of the metrics registry.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "net/socket.hpp"

namespace peachy::obs {

class MetricsServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 picks an ephemeral port; read it back with port()
  };

  /// Returns the Prometheus text served at /metrics. Called per scrape on
  /// the server thread — must be thread-safe against the rest of the
  /// process.
  using Provider = std::function<std::string()>;

  /// Binds and starts serving immediately. An empty provider serves the
  /// process-global obs::Registry.
  explicit MetricsServer(Options options, Provider provider = nullptr);
  ~MetricsServer();
  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// The bound TCP port (resolved when Options::port was 0).
  int port() const { return port_; }

  /// Stops the server thread and closes the listener. Idempotent.
  void stop();

 private:
  void serve_loop();

  net::Socket listen_;
  Provider provider_;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace peachy::obs
