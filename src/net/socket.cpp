#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace peachy::net {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

sockaddr_in make_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  PEACHY_REQUIRE(inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                 "bad IPv4 address \"" << host << "\"");
  return addr;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Polls `fd` for `events`; returns true when ready, false on timeout.
bool poll_one(int fd, short events, int timeout_ms) {
  pollfd p{fd, events, 0};
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR)
      throw Error(std::string("poll failed: ") + std::strerror(errno));
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::listen_on(const std::string& host, int port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  PEACHY_REQUIRE(s.valid(), "socket() failed: " << std::strerror(errno));
  int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in addr = make_addr(host, port);
  PEACHY_REQUIRE(::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "bind(" << host << ":" << port
                         << ") failed: " << std::strerror(errno));
  PEACHY_REQUIRE(::listen(s.fd(), backlog) == 0,
                 "listen failed: " << std::strerror(errno));
  return s;
}

Socket Socket::connect_to(const std::string& host, int port, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  const sockaddr_in addr = make_addr(host, port);
  for (;;) {
    Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    PEACHY_REQUIRE(s.valid(), "socket() failed: " << std::strerror(errno));
    const int flags = ::fcntl(s.fd(), F_GETFL);
    ::fcntl(s.fd(), F_SETFL, flags | O_NONBLOCK);
    const int rc =
        ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr));
    bool connected = rc == 0;
    if (!connected && errno == EINPROGRESS) {
      if (poll_one(s.fd(), POLLOUT, remaining_ms(deadline))) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len);
        connected = err == 0;
        errno = err;
      } else {
        errno = ETIMEDOUT;
      }
    }
    if (connected) {
      ::fcntl(s.fd(), F_SETFL, flags);
      set_nodelay(s.fd());
      return s;
    }
    // The peer's listener may simply not be up yet (rendezvous races);
    // retry refusals until the deadline.
    const bool retryable = errno == ECONNREFUSED || errno == ECONNRESET;
    PEACHY_REQUIRE(retryable && Clock::now() < deadline,
                   "connect to " << host << ":" << port
                                 << " failed: " << std::strerror(errno));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

Socket Socket::accept(int timeout_ms) const {
  PEACHY_REQUIRE(poll_one(fd_, POLLIN, timeout_ms),
                 "accept timed out after " << timeout_ms << " ms");
  const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  PEACHY_REQUIRE(fd >= 0, "accept failed: " << std::strerror(errno));
  set_nodelay(fd);
  return Socket(fd);
}

int Socket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  PEACHY_REQUIRE(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr),
                               &len) == 0,
                 "getsockname failed: " << std::strerror(errno));
  return ntohs(addr.sin_port);
}

void Socket::send_all(const void* data, std::size_t n, int timeout_ms) const {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  const auto* p = static_cast<const std::byte*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        PEACHY_REQUIRE(poll_one(fd_, POLLOUT, remaining_ms(deadline)),
                       "send timed out after " << timeout_ms
                           << " ms (" << n << " bytes still unwritten)");
        continue;
      }
      throw Error(std::string("send failed: ") + std::strerror(errno));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void Socket::sendv_all(struct iovec* iov, int iovcnt, int timeout_ms) const {
  // msghdr + MSG_NOSIGNAL (writev would raise SIGPIPE on a dead peer).
  // The kernel caps iovecs per call at IOV_MAX (>= 1024); larger batches
  // just take more than one sendmsg.
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (iovcnt > 0) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(std::min(iovcnt, 1024));
    const ssize_t w = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        PEACHY_REQUIRE(poll_one(fd_, POLLOUT, remaining_ms(deadline)),
                       "sendmsg timed out after " << timeout_ms << " ms ("
                           << iovcnt << " iovecs still unwritten)");
        continue;
      }
      throw Error(std::string("sendmsg failed: ") + std::strerror(errno));
    }
    // Advance past fully written iovecs, then trim the partial one.
    std::size_t left = static_cast<std::size_t>(w);
    while (iovcnt > 0 && left >= iov->iov_len) {
      left -= iov->iov_len;
      ++iov;
      --iovcnt;
    }
    if (iovcnt > 0 && left > 0) {
      iov->iov_base = static_cast<char*>(iov->iov_base) + left;
      iov->iov_len -= left;
    }
  }
}

ssize_t Socket::send_some(const void* data, std::size_t n) const {
  for (;;) {
    const ssize_t w = ::send(fd_, data, n, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w >= 0) return w;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw Error(std::string("send failed: ") + std::strerror(errno));
  }
}

ssize_t Socket::sendv_some(const struct iovec* iov, int iovcnt) const {
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<std::size_t>(std::min(iovcnt, 1024));
  for (;;) {
    const ssize_t w = ::sendmsg(fd_, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w >= 0) return w;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw Error(std::string("sendmsg failed: ") + std::strerror(errno));
  }
}

ssize_t Socket::recv_some(void* data, std::size_t n) const {
  for (;;) {
    const ssize_t r = ::recv(fd_, data, n, MSG_DONTWAIT);
    if (r >= 0) return r;  // 0 is EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw Error(std::string("recv failed: ") + std::strerror(errno));
  }
}

bool Socket::recv_all(void* data, std::size_t n, int timeout_ms) const {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  auto* p = static_cast<std::byte*>(data);
  std::size_t got = 0;
  while (got < n) {
    PEACHY_REQUIRE(poll_one(fd_, POLLIN, remaining_ms(deadline)),
                   "recv timed out after " << timeout_ms << " ms ("
                       << got << "/" << n << " bytes)");
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw Error(std::string("recv failed: ") + std::strerror(errno));
    }
    if (r == 0) {
      PEACHY_REQUIRE(got == 0, "connection closed mid-frame (" << got << "/"
                                                               << n
                                                               << " bytes)");
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void Socket::shutdown_write() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::shutdown_both() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace peachy::net
