#include "net/metrics_server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <utility>

#include "obs/obs.hpp"

namespace peachy::obs {

namespace {

/// Requests larger than this are junk for a two-route GET server.
constexpr std::size_t kMaxRequestBytes = 8192;

std::string http_response(int code, const char* status,
                          const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + status +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsServer::MetricsServer(Options options, Provider provider)
    : provider_(std::move(provider)) {
  if (!provider_)
    provider_ = [] { return Registry::global().prometheus_text(); };
  listen_ = net::Socket::listen_on(options.host, options.port, 16);
  port_ = listen_.local_port();
  PEACHY_CHECK(::pipe2(wake_pipe_, O_CLOEXEC | O_NONBLOCK) == 0);
  thread_ = std::thread([this] { serve_loop(); });
}

MetricsServer::~MetricsServer() {
  stop();
  for (int fd : wake_pipe_)
    if (fd >= 0) ::close(fd);
}

void MetricsServer::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (wake_pipe_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] ssize_t rc = ::write(wake_pipe_[1], &b, 1);
  }
  if (thread_.joinable()) thread_.join();
  listen_.close();
}

void MetricsServer::serve_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_.fd(), POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, 1000);
    if (stopping_.load(std::memory_order_relaxed)) return;
    if (rc <= 0 || !(fds[0].revents & POLLIN)) continue;

    try {
      net::Socket client = listen_.accept(1000);
      // Read until the blank line ending the request head (we ignore
      // everything past the request line anyway) or the size bound.
      std::string req;
      char buf[1024];
      while (req.size() < kMaxRequestBytes &&
             req.find("\r\n\r\n") == std::string::npos) {
        ssize_t n = client.recv_some(buf, sizeof buf);
        if (n == 0) break;
        if (n < 0) {  // nothing buffered yet: wait briefly for the client
          pollfd pf{client.fd(), POLLIN, 0};
          if (::poll(&pf, 1, 2000) <= 0) break;
          continue;
        }
        req.append(buf, static_cast<std::size_t>(n));
      }

      std::string response;
      if (req.rfind("GET /metrics", 0) == 0) {
        response = http_response(200, "OK",
                                 "text/plain; version=0.0.4; charset=utf-8",
                                 provider_());
      } else if (req.rfind("GET /healthz", 0) == 0) {
        response = http_response(200, "OK", "text/plain", "ok\n");
      } else {
        response = http_response(404, "Not Found", "text/plain",
                                 "not found\n");
      }
      client.send_all(response.data(), response.size(), 5000);
      client.shutdown_write();
    } catch (const Error&) {
      // A misbehaving client (timeout, reset) must not kill the server.
    }
  }
}

}  // namespace peachy::obs
