#include "net/metrics_server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <utility>

#include "obs/obs.hpp"

namespace peachy::obs {

namespace {

/// Requests larger than this are junk for a two-route GET server.
constexpr std::size_t kMaxRequestBytes = 8192;

std::string http_response(int code, const char* status,
                          const std::string& content_type,
                          const std::string& body, bool head) {
  // A HEAD response carries the headers the matching GET would — including
  // Content-Length — but no body (RFC 9110 §9.3.2).
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + status +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  if (!head) out += body;
  return out;
}

/// Splits "GET /metrics HTTP/1.1\r\n..." into method and path. Anything
/// that does not parse comes back as empty strings (-> 400). The query
/// string is not part of the route ("/metrics?x=1" scrapes fine).
void parse_request_line(const std::string& req, std::string& method,
                        std::string& path) {
  method.clear();
  path.clear();
  const std::size_t line_end = req.find("\r\n");
  const std::string line =
      req.substr(0, line_end == std::string::npos ? req.size() : line_end);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return;
  method = line.substr(0, sp1);
  path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
}

}  // namespace

MetricsServer::MetricsServer(Options options, Provider provider)
    : provider_(std::move(provider)) {
  if (!provider_)
    provider_ = [] { return Registry::global().prometheus_text(); };
  listen_ = net::Socket::listen_on(options.host, options.port, 16);
  port_ = listen_.local_port();
  PEACHY_CHECK(::pipe2(wake_pipe_, O_CLOEXEC | O_NONBLOCK) == 0);
  thread_ = std::thread([this] { serve_loop(); });
}

MetricsServer::~MetricsServer() {
  stop();
  for (int fd : wake_pipe_)
    if (fd >= 0) ::close(fd);
}

void MetricsServer::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (wake_pipe_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] ssize_t rc = ::write(wake_pipe_[1], &b, 1);
  }
  if (thread_.joinable()) thread_.join();
  listen_.close();
}

void MetricsServer::serve_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_.fd(), POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, 1000);
    if (stopping_.load(std::memory_order_relaxed)) return;
    if (rc <= 0 || !(fds[0].revents & POLLIN)) continue;

    try {
      net::Socket client = listen_.accept(1000);
      // Read until the blank line ending the request head (we ignore
      // everything past the request line anyway) or the size bound.
      std::string req;
      char buf[1024];
      while (req.size() < kMaxRequestBytes &&
             req.find("\r\n\r\n") == std::string::npos) {
        ssize_t n = client.recv_some(buf, sizeof buf);
        if (n == 0) break;
        if (n < 0) {  // nothing buffered yet: wait briefly for the client
          pollfd pf{client.fd(), POLLIN, 0};
          if (::poll(&pf, 1, 2000) <= 0) break;
          continue;
        }
        req.append(buf, static_cast<std::size_t>(n));
      }

      std::string method, path;
      parse_request_line(req, method, path);
      const bool head = method == "HEAD";
      std::string response;
      if (method.empty()) {
        response = http_response(400, "Bad Request", "text/plain",
                                 "bad request\n", false);
      } else if (method != "GET" && !head) {
        response = http_response(405, "Method Not Allowed", "text/plain",
                                 "method not allowed\n", false);
      } else if (path == "/metrics") {
        response = http_response(200, "OK",
                                 "text/plain; version=0.0.4; charset=utf-8",
                                 provider_(), head);
      } else if (path == "/healthz") {
        response = http_response(200, "OK", "text/plain", "ok\n", head);
      } else {
        // Exact-match routing: "/metricsfoo" and friends are 404s, not
        // accidental scrapes.
        response = http_response(404, "Not Found", "text/plain",
                                 "not found\n", head);
      }
      client.send_all(response.data(), response.size(), 5000);
      client.shutdown_write();
    } catch (const Error&) {
      // A misbehaving client (timeout, reset) must not kill the server.
    }
  }
}

}  // namespace peachy::obs
