#include "net/tcp.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "core/timer.hpp"
#include "net/wire.hpp"
#include "obs/cluster.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"

namespace peachy::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Frames parked out of order beyond this distance from recv_next are
/// stream corruption, not reassembly work (the sender's window can never
/// legitimately run this far ahead).
constexpr std::uint64_t kMaxReassemblyGap = 1u << 16;
/// Bytes drained from one socket before the other sockets get a turn
/// (and before the burst's single cumulative ack goes out).
constexpr std::size_t kMaxBurstBytes = 4u << 20;

obs::Counter& obs_frames_sent() {
  static obs::Counter& c = obs::Registry::global().counter("net.frames_sent");
  return c;
}
obs::Counter& obs_frames_received() {
  static obs::Counter& c =
      obs::Registry::global().counter("net.frames_received");
  return c;
}
obs::Counter& obs_retransmits() {
  static obs::Counter& c = obs::Registry::global().counter("net.retransmits");
  return c;
}
obs::Counter& obs_window_stalls() {
  static obs::Counter& c =
      obs::Registry::global().counter("net.window_stalls");
  return c;
}
obs::Counter& obs_cumulative_acks() {
  static obs::Counter& c =
      obs::Registry::global().counter("net.cumulative_acks");
  return c;
}
obs::Histogram& obs_coalesced_frames() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("net.coalesced_frames_per_writev");
  return h;
}
obs::Histogram& obs_frame_bytes() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("net.frame_bytes");
  return h;
}
obs::Histogram& obs_rtt_ns() {
  static obs::Histogram& h = obs::Registry::global().histogram("net.rtt_ns");
  return h;
}
obs::Counter& obs_frames_abandoned() {
  static obs::Counter& c =
      obs::Registry::global().counter("net.frames_abandoned");
  return c;
}
obs::Counter& obs_heartbeats_sent() {
  static obs::Counter& c =
      obs::Registry::global().counter("net.heartbeats_sent");
  return c;
}
obs::Counter& obs_heartbeats_missed() {
  static obs::Counter& c =
      obs::Registry::global().counter("net.heartbeats_missed");
  return c;
}

}  // namespace

TcpTransport::TcpTransport(int rank, int world, int rendezvous_port,
                           const TcpOptions& options)
    : rank_(rank), world_(world), opt_(options) {
  PEACHY_REQUIRE(world >= 1, "tcp world needs >= 1 rank, got " << world);
  PEACHY_REQUIRE(rank >= 0 && rank < world,
                 "bad rank " << rank << " for world of " << world);
  PEACHY_REQUIRE(opt_.window_frames >= 1,
                 "window_frames must be >= 1, got " << opt_.window_frames);
  obs::Span connect_span("net.connect", "net");
  connect_span.arg("rank", rank);
  connect_span.arg("world", world);

  peers_.resize(static_cast<std::size_t>(world));
  listen_ = Socket::listen_on(opt_.host, 0, world + 8);
  session_ = rendezvous_register(opt_.host, rendezvous_port, rank, world,
                                 listen_.local_port(),
                                 opt_.connect_timeout_ms);

  const auto make_peer = [&](int r, Socket sock) {
    auto p = std::make_unique<Peer>();
    p->sock = std::move(sock);
    p->send_seq = opt_.first_seq;
    p->recv_next = opt_.first_seq;
    p->last_ack_sent = opt_.first_seq;
    p->last_rx = Clock::now();  // the handshake just proved liveness
    if (opt_.fault.active())
      p->fault = std::make_unique<FaultInjector>(opt_.fault, rank_, r);
    peers_[static_cast<std::size_t>(r)] = std::move(p);
  };

  // Dial every lower rank (lower ranks are already accepting by induction:
  // rank 0 dials nobody, so its accept loop starts first).
  for (int j = 0; j < rank; ++j) {
    Socket s = Socket::connect_to(opt_.host, session_.peer_ports[
                                      static_cast<std::size_t>(j)],
                                  opt_.connect_timeout_ms);
    FrameHeader hello;
    hello.type = FrameType::kHello;
    hello.src = rank_;
    hello.tag = j;
    send_frame(s, hello);
    FrameHeader h;
    std::vector<std::byte> payload;
    PEACHY_REQUIRE(recv_frame(s, h, payload, opt_.connect_timeout_ms),
                   "rank " << rank_ << ": rank " << j
                           << " closed during the handshake");
    PEACHY_REQUIRE(h.type == FrameType::kHelloAck,
                   "rank " << rank_ << ": expected HELLO_ACK from rank " << j
                           << ", got frame type " << static_cast<int>(h.type));
    make_peer(j, std::move(s));
  }

  // Accept every higher rank, in whatever order they arrive.
  for (int n = 0; n < world - rank - 1; ++n) {
    Socket s = listen_.accept(opt_.connect_timeout_ms);
    FrameHeader h;
    std::vector<std::byte> payload;
    PEACHY_REQUIRE(recv_frame(s, h, payload, opt_.connect_timeout_ms),
                   "rank " << rank_ << ": peer closed before HELLO");
    PEACHY_REQUIRE(h.type == FrameType::kHello,
                   "rank " << rank_ << ": expected HELLO, got frame type "
                           << static_cast<int>(h.type));
    PEACHY_REQUIRE(h.tag == rank_, "rank " << rank_
                       << ": HELLO addressed to rank " << h.tag);
    PEACHY_REQUIRE(h.src > rank_ && h.src < world,
                   "rank " << rank_ << ": HELLO from unexpected rank "
                           << h.src);
    PEACHY_REQUIRE(!peers_[static_cast<std::size_t>(h.src)],
                   "rank " << rank_ << ": duplicate connection from rank "
                           << h.src);
    FrameHeader ack;
    ack.type = FrameType::kHelloAck;
    ack.src = rank_;
    ack.tag = h.src;
    send_frame(s, ack);
    make_peer(h.src, std::move(s));
  }

  PEACHY_CHECK(::pipe2(wake_pipe_, O_CLOEXEC | O_NONBLOCK) == 0);
  reader_ = std::thread([this] { reader_loop(); });
  if (obs::enabled())
    obs::Tracer::global().instant(
        "net.mesh_up", "net",
        {{"rank", rank_}, {"links", world_ - 1}});
}

TcpTransport::~TcpTransport() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  wake_reader();
  if (reader_.joinable()) reader_.join();
  for (int fd : wake_pipe_)
    if (fd >= 0) ::close(fd);
}

void TcpTransport::throw_peer_dead(int peer_rank) {
  std::string why;
  {
    std::lock_guard lock(mu_);
    why = peer(peer_rank).why;
  }
  obs::FlightRecorder::global().note("net.throw_peer_died", peer_rank);
  obs::FlightRecorder::global().dump("peer-died");
  throw PeerDied(rank_, peer_rank, why.empty() ? "connection lost" : why);
}

void TcpTransport::mark_dead(int src, const std::string& why, bool graceful) {
  bool first = false;
  {
    std::lock_guard lock(mu_);
    Peer& p = peer(src);
    if (!p.dead) {
      p.dead = true;
      p.why = why;
      first = true;
    }
  }
  cv_.notify_all();
  if (first) {
    obs::FlightRecorder::global().note(
        graceful ? "net.peer_goodbye_eof" : "net.peer_dead", src);
    // A real death gets its post-mortem immediately — the application
    // thread may be wedged far from any throw site (or the whole failure
    // may be on another rank), so the reader writes the dump itself.
    if (!graceful) obs::FlightRecorder::global().dump("peer-died");
  }
}

void TcpTransport::write_or_queue(int r, struct iovec* iov,
                                  std::size_t iovcnt) {
  Peer& p = peer(r);
  std::size_t idx = 0;
  if (p.outbox_off == p.outbox.size()) {  // nothing queued: try the kernel
    p.outbox.clear();
    p.outbox_off = 0;
    while (idx < iovcnt) {
      const ssize_t w = p.sock.sendv_some(
          iov + idx,
          static_cast<int>(std::min<std::size_t>(iovcnt - idx, 1024)));
      if (w < 0) break;  // kernel send buffer full: queue the rest
      std::size_t left = static_cast<std::size_t>(w);
      while (idx < iovcnt && left >= iov[idx].iov_len) {
        left -= iov[idx].iov_len;
        ++idx;
      }
      if (idx < iovcnt && left > 0) {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + left;
        iov[idx].iov_len -= left;
      }
    }
    if (idx == iovcnt) return;
  }
  // Backpressure: the refused tail is copied so it outlives the caller —
  // the one place framing gives up zero-copy, bounded by the window. New
  // writes behind a non-empty outbox queue in full to keep the byte order.
  if (p.outbox_off > 0) {
    p.outbox.erase(
        p.outbox.begin(),
        p.outbox.begin() + static_cast<std::ptrdiff_t>(p.outbox_off));
    p.outbox_off = 0;
  }
  for (std::size_t i = idx; i < iovcnt; ++i) {
    const auto* b = static_cast<const std::byte*>(iov[i].iov_base);
    p.outbox.insert(p.outbox.end(), b, b + iov[i].iov_len);
  }
  {
    std::lock_guard lock(mu_);
    p.outbox_pending = true;
  }
  wake_reader();  // start polling this socket for POLLOUT
}

void TcpTransport::drain_outbox(int r) {
  Peer& p = peer(r);
  std::lock_guard wlock(p.write_mutex);
  try {
    while (p.outbox_off < p.outbox.size()) {
      const ssize_t w = p.sock.send_some(p.outbox.data() + p.outbox_off,
                                         p.outbox.size() - p.outbox_off);
      if (w < 0) return;  // buffer filled again; POLLOUT will re-fire
      p.outbox_off += static_cast<std::size_t>(w);
    }
  } catch (const Error& e) {
    mark_dead(r, e.what());  // the queue dies with the connection
  }
  p.outbox.clear();
  p.outbox_off = 0;
  std::lock_guard lock(mu_);
  p.outbox_pending = false;
}

void TcpTransport::write_frame(int r, const std::vector<std::byte>& frame) {
  Peer& p = peer(r);
  std::lock_guard lock(p.write_mutex);
  struct iovec one{const_cast<std::byte*>(frame.data()), frame.size()};
  write_or_queue(r, &one, 1);
}

void TcpTransport::wake_reader() {
  if (wake_pipe_[1] < 0) return;
  const char b = 'x';
  // EAGAIN means a wake-up is already pending — exactly as good.
  [[maybe_unused]] ssize_t rc = ::write(wake_pipe_[1], &b, 1);
}

void TcpTransport::send(int dest, int tag, const void* data,
                        std::size_t bytes) {
  if (dest == rank_) {  // self-send never touches a socket
    Delivery d;
    d.payload.resize(bytes);
    if (bytes) std::memcpy(d.payload.data(), data, bytes);
    if (obs::enabled()) {
      const obs::cluster::TraceContext ctx = obs::cluster::current();
      if (ctx.valid()) {
        d.info.trace_id = ctx.trace_id;
        d.info.span_id = ctx.span_id;
        d.info.has_ctx = true;
      }
    }
    {
      std::lock_guard lock(mu_);
      channels_[{rank_, tag}].push_back(std::move(d));
    }
    cv_.notify_all();
    return;
  }
  PEACHY_REQUIRE(bytes <= kMaxPayloadBytes,
                 "payload of " << bytes << " bytes exceeds the "
                               << kMaxPayloadBytes << "-byte cap");

  Peer& p = peer(dest);
  std::lock_guard send_lock(p.send_mutex);

  // Window admission: park until the peer acks a slot free. Staged frames
  // can't be acked, so put them on the wire before waiting.
  const auto window = static_cast<std::size_t>(opt_.window_frames);
  bool stalled = false;
  {
    std::unique_lock lock(mu_);
    while (!p.dead && p.unacked.size() >= window) {
      if (!stalled) {
        stalled = true;
        ++window_stalls_;
        if (obs::enabled()) obs_window_stalls().add(1);
      }
      if (!p.staged.empty()) {
        lock.unlock();
        flush_peer(dest);
        lock.lock();
        continue;
      }
      // The reader's retransmit budget bounds this wait: it either frees
      // window space (ack progress) or marks the peer dead.
      cv_.wait_for(lock, std::chrono::milliseconds(100));
    }
    if (p.dead) {
      lock.unlock();
      throw_peer_dead(dest);
    }
  }

  // Judge the fresh frame once, in seq order (send_mutex holds the order);
  // retransmissions bypass the injector.
  FaultInjector::Decision fault;
  if (p.fault) fault = p.fault->next();
  if (fault.sever) {
    p.sock.shutdown_both();
    mark_dead(dest, "fault injector severed the connection");
    throw_peer_dead(dest);
  }

  auto f = std::make_shared<TxFrame>();
  f->h.type = FrameType::kData;
  f->h.src = rank_;
  f->h.tag = tag;
  f->h.seq = p.send_seq++;
  f->h.len = static_cast<std::uint32_t>(bytes);
  f->h.crc = bytes ? crc32(data, bytes) : 0;
  f->payload.assign(static_cast<const std::byte*>(data),
                    static_cast<const std::byte*>(data) + bytes);
  f->staged_at = Clock::now();
  f->write_twice = fault.duplicate;
  if (fault.delay_ms > 0)
    f->hold_until = f->staged_at + std::chrono::milliseconds(fault.delay_ms);
  // Trace-context propagation: a message sent under an active context
  // carries it as a trailer, linking the receiver's spans to this send.
  // Attached before the injector's copies are written so drops, dups, and
  // delays all carry (and dedup to) the same context.
  if (obs::enabled()) {
    const obs::cluster::TraceContext ctx = obs::cluster::current();
    if (ctx.valid()) {
      obs::cluster::encode_context(ctx, f->ctx);
      f->has_ctx = true;
      f->h.flags |= kFlagCarriesCtx;
    }
  }

  bool flush_now = false;
  {
    std::lock_guard lock(mu_);
    if (p.unacked.empty()) {  // arm the per-peer timer for the oldest frame
      p.attempts = 0;
      p.retransmit_at =
          f->staged_at + std::chrono::milliseconds(opt_.ack_timeout_ms);
    }
    p.unacked.push_back(f);
    if (fault.drop) {
      // Never stage the first copy — the retransmit timer recovers it.
    } else if (fault.delay_ms > 0) {
      p.held.push_back(f);  // the reader writes it late: real reordering
    } else {
      p.staged.push_back(f);
      p.staged_bytes +=
          kHeaderBytes + bytes + (f->has_ctx ? kCtxTrailerBytes : 0);
      flush_now = p.staged_bytes >= opt_.coalesce_bytes;
    }
  }
  if (flush_now) flush_peer(dest);
  wake_reader();  // coalesce the rest: the reader flushes the batch

  if (obs::enabled())
    obs::Tracer::global().instant(
        "net.send", "net",
        {{"src", rank_},
         {"dst", dest},
         {"tag", tag},
         {"bytes", static_cast<std::int64_t>(bytes)}});
}

bool TcpTransport::write_batch(int r, const std::vector<TxFramePtr>& batch,
                               std::uint64_t ack) {
  // Header iovec + payload iovec per frame: nothing is copied into an
  // intermediate contiguous buffer on the way to the kernel.
  std::vector<struct iovec> iov;
  iov.reserve(batch.size() * 3 + 2);
  for (const auto& f : batch) {
    f->h.flags |= kFlagCarriesAck;
    f->h.ack = ack;
    encode_header(f->h, f->hdr);
    iov.push_back({f->hdr, kHeaderBytes});
    if (!f->payload.empty())
      iov.push_back({f->payload.data(), f->payload.size()});
    if (f->has_ctx) iov.push_back({f->ctx, kCtxTrailerBytes});
    if (f->write_twice) {  // injected duplicate: same bytes, same batch
      f->write_twice = false;
      iov.push_back({f->hdr, kHeaderBytes});
      if (!f->payload.empty())
        iov.push_back({f->payload.data(), f->payload.size()});
      if (f->has_ctx) iov.push_back({f->ctx, kCtxTrailerBytes});
    }
  }
  try {
    write_or_queue(r, iov.data(), iov.size());
  } catch (const Error& e) {
    mark_dead(r, e.what());
    return false;
  }
  if (obs::enabled()) {
    obs_frames_sent().add(static_cast<std::int64_t>(batch.size()));
    obs_coalesced_frames().observe(static_cast<std::int64_t>(batch.size()));
    for (const auto& f : batch)
      obs_frame_bytes().observe(
          static_cast<std::int64_t>(kHeaderBytes + f->payload.size()));
  }
  return true;
}

void TcpTransport::flush_peer(int r) {
  Peer& p = peer(r);
  {
    std::lock_guard lock(mu_);
    if (p.dead || p.staged.empty()) return;
  }
  std::lock_guard wlock(p.write_mutex);
  std::vector<TxFramePtr> batch;
  std::uint64_t ack_val = 0;
  bool carried_ack = false;
  {
    std::lock_guard lock(mu_);
    if (p.dead || p.staged.empty()) return;
    batch.assign(p.staged.begin(), p.staged.end());
    p.staged.clear();
    p.staged_bytes = 0;
    // Every DATA frame piggybacks the current cumulative ack, so a burst
    // flowing the other way usually needs no pure ACK at all.
    ack_val = p.recv_next;
    p.last_ack_sent = ack_val;
    if (p.ack_pending) {
      p.ack_pending = false;
      carried_ack = true;
      ++acks_sent_;
    }
  }
  if (write_batch(r, batch, ack_val) && carried_ack && obs::enabled())
    obs_cumulative_acks().add(1);
}

void TcpTransport::flush_all() {
  for (int r = 0; r < world_; ++r)
    if (r != rank_) flush_peer(r);
}

void TcpTransport::send_pure_ack(int r) {
  Peer& p = peer(r);
  {
    std::lock_guard lock(mu_);
    if (p.dead || !p.ack_pending) return;
  }
  std::lock_guard wlock(p.write_mutex);
  std::uint64_t ack_val = 0;
  {
    std::lock_guard lock(mu_);
    if (p.dead || !p.ack_pending) return;
    ack_val = p.recv_next;
    p.last_ack_sent = ack_val;
    p.ack_pending = false;
    ++acks_sent_;
  }
  FrameHeader a;
  a.type = FrameType::kAck;
  a.src = rank_;
  a.flags = kFlagCarriesAck;
  a.ack = ack_val;
  std::byte buf[kHeaderBytes];
  encode_header(a, buf);
  try {
    struct iovec one{buf, kHeaderBytes};
    write_or_queue(r, &one, 1);
  } catch (const Error& e) {
    mark_dead(r, e.what());
    return;
  }
  if (obs::enabled()) obs_cumulative_acks().add(1);
}

void TcpTransport::release_held(int r, Clock::time_point now) {
  Peer& p = peer(r);
  std::lock_guard lock(mu_);
  // hold_until is monotone within a peer (stage times are, and the plan's
  // delay is constant), so draining from the front is exact.
  while (!p.held.empty() && p.held.front()->hold_until <= now) {
    TxFramePtr f = p.held.front();
    p.held.pop_front();
    p.staged.push_back(f);
    p.staged_bytes += kHeaderBytes + f->payload.size() +
                      (f->has_ctx ? kCtxTrailerBytes : 0);
  }
}

void TcpTransport::retransmit_pass(int r, Clock::time_point now) {
  Peer& p = peer(r);
  {
    std::lock_guard lock(mu_);
    if (p.dead || p.unacked.empty() || now < p.retransmit_at) return;
  }
  std::lock_guard wlock(p.write_mutex);
  std::vector<TxFramePtr> batch;
  std::uint64_t ack_val = 0;
  bool exhausted = false;
  std::uint64_t oldest_seq = 0;
  {
    std::lock_guard lock(mu_);
    if (p.dead || p.unacked.empty() || now < p.retransmit_at) return;
    oldest_seq = p.unacked.front()->h.seq;
    // Go-back-N: rewrite everything unacked and due in one batch — the
    // receiver's reassembly buffer absorbs the overlap, and multiple
    // dropped frames recover in a single timeout.
    for (const auto& f : p.unacked)
      if (f->hold_until == Clock::time_point{} || f->hold_until <= now)
        batch.push_back(f);
    if (batch.empty()) {
      // Every unacked frame is still injector-held: no copy has reached
      // the wire yet, so the silence proves nothing about the link. Rearm
      // the timer to the earliest hold deadline without burning an
      // attempt — a hold longer than the backoff ladder must not kill a
      // healthy peer.
      auto earliest = Clock::time_point::max();
      for (const auto& f : p.unacked)
        earliest = std::min(earliest, f->hold_until);
      p.retransmit_at =
          earliest + std::chrono::milliseconds(opt_.ack_timeout_ms);
      return;
    }
    if (p.attempts >= opt_.max_retries) {
      exhausted = true;
    } else {
      ++p.attempts;
      const int backoff =
          std::min(opt_.ack_timeout_ms << std::min(p.attempts, 7), 10000);
      p.retransmit_at = now + std::chrono::milliseconds(backoff);
      if (p.outbox_off < p.outbox.size()) {
        // The previous copy has not even cleared this host's outbox (the
        // peer is not reading): rewriting would only duplicate bytes in
        // the local queue. The pass still costs an attempt — no ack while
        // the kernel refuses bytes is evidence against the peer, and the
        // retry budget must stay bounded.
        return;
      }
      // Staged frames are a subset of what's being rewritten; frames whose
      // injected hold just expired are being written here, not twice.
      p.staged.clear();
      p.staged_bytes = 0;
      while (!p.held.empty() && p.held.front()->hold_until <= now)
        p.held.pop_front();
      ack_val = p.recv_next;
      p.last_ack_sent = ack_val;
      if (p.ack_pending) {
        p.ack_pending = false;
        ++acks_sent_;
      }
      retransmits_ += batch.size();
    }
  }
  if (exhausted) {
    obs::FlightRecorder::global().note("net.retry_exhausted", r,
                                       static_cast<std::int64_t>(oldest_seq));
    mark_dead(r, "no ACK for seq " + std::to_string(oldest_seq) + " after " +
                     std::to_string(opt_.max_retries) + " retransmit passes");
    return;
  }
  if (batch.empty()) return;
  obs::FlightRecorder::global().note(
      "net.retransmit", r, static_cast<std::int64_t>(batch.size()),
      static_cast<std::int64_t>(oldest_seq));
  if (write_batch(r, batch, ack_val) && obs::enabled())
    obs_retransmits().add(static_cast<std::int64_t>(batch.size()));
}

void TcpTransport::apply_ack(int src, std::uint64_t ack) {
  Peer& p = peer(src);
  bool progress = false;
  {
    std::lock_guard lock(mu_);
    const auto now = Clock::now();
    while (!p.unacked.empty() && seq_before(p.unacked.front()->h.seq, ack)) {
      if (obs::enabled())
        obs_rtt_ns().observe(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - p.unacked.front()->staged_at)
                .count());
      p.unacked.pop_front();
      progress = true;
    }
    if (progress) {
      p.attempts = 0;  // the link is alive; restart the backoff ladder
      if (!p.unacked.empty())
        p.retransmit_at =
            now + std::chrono::milliseconds(opt_.ack_timeout_ms);
    }
  }
  if (progress) cv_.notify_all();  // window space freed; shutdown may drain
}

std::vector<std::byte> TcpTransport::recv(int src, int tag, MsgInfo* info) {
  obs::Span span("net.recv", "net");
  span.arg("src", src);
  span.arg("dst", rank_);
  span.arg("tag", tag);
  // Entering a blocking recv is a natural batch boundary: put everything
  // staged on the wire so the answer this recv waits on can be provoked.
  flush_all();
  std::unique_lock lock(mu_);
  auto& channel = channels_[{src, tag}];
  // A peer that said GOODBYE will never send again — fail a still-pending
  // recv right away instead of waiting for the socket to actually close.
  const bool got = cv_.wait_for(
      lock, std::chrono::milliseconds(opt_.recv_timeout_ms), [&] {
        return !channel.empty() ||
               (src != rank_ && (peer(src).dead || peer(src).goodbye));
      });
  if (channel.empty()) {
    if (src != rank_ && (peer(src).dead || peer(src).goodbye)) {
      const std::string why = peer(src).why;
      lock.unlock();
      obs::FlightRecorder::global().note("net.recv_orphaned", src, tag);
      obs::FlightRecorder::global().dump("recv-orphaned");
      throw PeerDied(rank_, src,
                     why.empty() ? "peer shut down with this recv pending"
                                 : why);
    }
    PEACHY_REQUIRE(got, "rank " << rank_ << ": recv from rank " << src
                                << " tag " << tag << " timed out after "
                                << opt_.recv_timeout_ms << " ms");
  }
  Delivery d = std::move(channel.front());
  channel.pop_front();
  if (info) *info = d.info;
  return std::move(d.payload);
}

bool TcpTransport::try_recv(int src, int tag, std::vector<std::byte>& out,
                            MsgInfo* info) {
  std::lock_guard lock(mu_);
  auto it = channels_.find({src, tag});
  if (it == channels_.end() || it->second.empty()) return false;
  Delivery d = std::move(it->second.front());
  it->second.pop_front();
  if (info) *info = d.info;
  out = std::move(d.payload);
  return true;
}

void TcpTransport::handle_frame(int src, const FrameHeader& h,
                                std::vector<std::byte> payload,
                                const std::byte* ctx_trailer) {
  Peer& p = peer(src);
  switch (h.type) {
    case FrameType::kAck: {
      if (h.flags & kFlagCarriesAck) apply_ack(src, h.ack);
      break;
    }
    case FrameType::kData: {
      if (h.src != src) {
        mark_dead(src, "DATA frame claims src rank " +
                           std::to_string(h.src) + " on the link to rank " +
                           std::to_string(src));
        break;
      }
      if (h.flags & kFlagCarriesAck) apply_ack(src, h.ack);
      Delivery d;
      d.payload = std::move(payload);
      if (ctx_trailer != nullptr) {
        const obs::cluster::TraceContext ctx =
            obs::cluster::decode_context(ctx_trailer);
        if (ctx.valid()) {
          d.info.trace_id = ctx.trace_id;
          d.info.span_id = ctx.span_id;
          d.info.has_ctx = true;
        }
      }
      std::uint64_t delivered = 0;
      {
        std::lock_guard lock(mu_);
        if (h.seq == p.recv_next) {
          channels_[{src, h.tag}].push_back(std::move(d));
          ++p.recv_next;
          ++delivered;
          // Drain the reassembly run this frame just completed.
          for (auto it = p.reassembly.find(p.recv_next);
               it != p.reassembly.end();
               it = p.reassembly.find(p.recv_next)) {
            channels_[{src, it->second.first}].push_back(
                std::move(it->second.second));
            p.reassembly.erase(it);
            ++p.recv_next;
            ++delivered;
          }
        } else if (seq_before(p.recv_next, h.seq)) {
          if (h.seq - p.recv_next > kMaxReassemblyGap) {
            p.dead = true;
            p.why = "sequence gap: got " + std::to_string(h.seq) +
                    ", expected " + std::to_string(p.recv_next) +
                    " (beyond any legal window)";
          } else {
            // Out of order: park it. emplace keeps the first copy, so an
            // injected duplicate inside the window can never
            // double-deliver (and its context dedups with it — one
            // delivery, one context, no duplicate child spans).
            p.reassembly.emplace(h.seq, std::make_pair(h.tag, std::move(d)));
          }
        }
        // h.seq below recv_next: an already-delivered duplicate (injected,
        // or a retransmission that crossed our ack) — drop the payload but
        // re-ack below so the sender's window still opens.
        p.ack_pending = true;
      }
      cv_.notify_all();
      if (obs::enabled() && delivered)
        obs_frames_received().add(static_cast<std::int64_t>(delivered));
      break;
    }
    case FrameType::kGoodbye: {
      {
        std::lock_guard lock(mu_);
        p.goodbye = true;
      }
      cv_.notify_all();
      break;
    }
    case FrameType::kPing: {
      // Empty PING: pure liveness proof — last_rx was already refreshed by
      // the reader. A clock probe carries the sender's origin timestamp and
      // wants it echoed back next to our clock reading.
      if (payload.size() == 8) {
        const std::byte* q = payload.data();
        const std::uint64_t origin = read_u64(q, q + 8);
        std::vector<std::byte> reply;
        append_u64(reply, origin);
        append_u64(reply, static_cast<std::uint64_t>(now_ns()));
        FrameHeader pong;
        pong.type = FrameType::kPong;
        pong.src = rank_;
        try {
          write_frame(src, encode_frame(pong, reply.data(), reply.size()));
        } catch (const Error& e) {
          mark_dead(src, e.what());
        }
      }
      break;
    }
    case FrameType::kPong: {
      if (payload.size() == 16) {
        const std::byte* q = payload.data();
        const std::byte* end = q + payload.size();
        const auto origin = static_cast<std::int64_t>(read_u64(q, end));
        const auto peer_now = static_cast<std::int64_t>(read_u64(q, end));
        bool accepted = false;
        std::int64_t offset_us = 0;
        {
          std::lock_guard lock(mu_);
          accepted = p.clock_est.sample(origin, peer_now, now_ns());
          offset_us = p.clock_est.offset_ns() / 1000;
        }
        if (accepted && obs::enabled())
          obs::Registry::global()
              .gauge("net.clock_offset_us.peer" + std::to_string(src))
              .set(offset_us);
      }
      break;
    }
    default:
      mark_dead(src, "unexpected frame type " +
                         std::to_string(static_cast<int>(h.type)) +
                         " after the handshake");
  }
}

void TcpTransport::heartbeat_pass() {
  if (opt_.heartbeat_ms <= 0) return;
  const auto now = Clock::now();
  const int suspicion_ms = opt_.suspicion_timeout_ms > 0
                               ? opt_.suspicion_timeout_ms
                               : 4 * opt_.heartbeat_ms;
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) continue;
    Peer& p = peer(r);
    {
      std::lock_guard lock(mu_);
      // A peer that said goodbye is draining, not dead — stop judging it.
      if (p.dead || p.goodbye) continue;
    }
    if (!p.sock.valid()) continue;
    const auto silence_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - p.last_rx)
            .count();
    if (silence_ms > suspicion_ms) {
      // Unread bytes in the receive buffer are proof of liveness the
      // reader simply has not drained yet (it also writes batches now, so
      // a loaded machine can lag it past an aggressive suspicion timeout).
      // Suspect only a peer that is silent on the wire itself.
      pollfd pending{p.sock.fd(), POLLIN, 0};
      if (::poll(&pending, 1, 0) > 0 && (pending.revents & POLLIN)) {
        p.last_rx = now;  // reset the clock; the drain is already queued
        p.suspected = false;
        continue;
      }
      // Two-phase suspicion: a one-shot clock comparison cannot tell a
      // dead peer from one starved of CPU alongside this very thread.
      // The first trigger only arms suspicion and keeps pinging; the peer
      // is declared dead when it stays silent for a further full window
      // measured from a moment this reader was demonstrably running.
      if (p.suspected && p.last_rx <= p.suspect_since &&
          now - p.suspect_since > std::chrono::milliseconds(suspicion_ms)) {
        if (obs::enabled()) obs_heartbeats_missed().add(1);
        mark_dead(r, "no frames from rank " + std::to_string(r) + " for " +
                         std::to_string(silence_ms) +
                         " ms (heartbeat suspicion timeout " +
                         std::to_string(suspicion_ms) + " ms)");
        continue;
      }
      if (!p.suspected || p.last_rx > p.suspect_since) {
        p.suspected = true;
        p.suspect_since = now;
        obs::FlightRecorder::global().note(
            "net.peer_suspected", r, static_cast<std::int64_t>(silence_ms));
      }
      // Fall through: the suspect keeps receiving pings at heartbeat
      // cadence so an alive-but-idle peer has something to answer.
    } else {
      p.suspected = false;
    }
    if (now - p.last_ping_tx <
        std::chrono::milliseconds(opt_.heartbeat_ms))
      continue;
    p.last_ping_tx = now;
    FrameHeader ping;
    ping.type = FrameType::kPing;
    ping.src = rank_;
    try {
      write_frame(r, encode_frame(ping, nullptr, 0));
    } catch (const Error& e) {
      mark_dead(r, e.what());
      continue;
    }
    {
      std::lock_guard lock(mu_);
      ++heartbeats_sent_;
    }
    if (obs::enabled()) obs_heartbeats_sent().add(1);
  }
}

void TcpTransport::clock_pass() {
  if (opt_.clock_sync_ms <= 0) return;
  const auto now = Clock::now();
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) continue;
    Peer& p = peer(r);
    {
      std::lock_guard lock(mu_);
      if (p.dead || p.goodbye) continue;
    }
    if (!p.sock.valid()) continue;
    // The first few probes per peer go out at a tight cadence so even a
    // sub-second run converges on an estimate (the min-RTT filter needs a
    // couple of samples to find a clean round trip); after the burst the
    // cadence relaxes to clock_sync_ms.
    const int interval_ms = p.probes_sent < 4
                                ? std::min(opt_.clock_sync_ms, 20)
                                : opt_.clock_sync_ms;
    if (p.probes_sent > 0 &&
        now - p.last_probe_tx < std::chrono::milliseconds(interval_ms))
      continue;
    p.last_probe_tx = now;
    ++p.probes_sent;
    std::vector<std::byte> origin;
    append_u64(origin, static_cast<std::uint64_t>(now_ns()));
    FrameHeader probe;
    probe.type = FrameType::kPing;
    probe.src = rank_;
    try {
      write_frame(r, encode_frame(probe, origin.data(), origin.size()));
    } catch (const Error& e) {
      mark_dead(r, e.what());
    }
  }
}

std::map<int, TcpTransport::ClockEstimate> TcpTransport::clock_estimates()
    const {
  std::map<int, ClockEstimate> out;
  std::lock_guard lock(mu_);
  for (int r = 0; r < world_; ++r) {
    if (r == rank_ || !peers_[static_cast<std::size_t>(r)]) continue;
    const auto& est = peers_[static_cast<std::size_t>(r)]->clock_est;
    if (!est.valid()) continue;
    out[r] = ClockEstimate{true, est.offset_ns(), est.min_rtt_ns(),
                           est.samples()};
  }
  return out;
}

int TcpTransport::next_deadline_ms(int cap) {
  auto next = Clock::time_point::max();
  {
    std::lock_guard lock(mu_);
    for (int r = 0; r < world_; ++r) {
      if (r == rank_) continue;
      Peer& p = peer(r);
      if (p.dead) continue;
      if (!p.unacked.empty()) next = std::min(next, p.retransmit_at);
      if (!p.held.empty())
        next = std::min(next, p.held.front()->hold_until);
    }
  }
  if (next == Clock::time_point::max()) return cap;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      next - Clock::now())
                      .count();
  return static_cast<int>(std::clamp<long long>(ms, 1, cap));
}

void TcpTransport::reader_loop() {
  // With heartbeats on, wake at least twice per period so pings go out and
  // silence is noticed on time even when no socket turns readable. Clock
  // probes tighten the tick the same way.
  int base_ms = opt_.heartbeat_ms > 0
                    ? std::clamp(opt_.heartbeat_ms / 2, 1, 500)
                    : 500;
  if (opt_.clock_sync_ms > 0)
    base_ms = std::min(base_ms, std::clamp(opt_.clock_sync_ms / 2, 1, 500));
  std::vector<std::byte> chunk(256 * 1024);  // one recv_some scratch buffer
  for (;;) {
    std::vector<pollfd> fds;
    std::vector<int> fd_rank;
    {
      std::lock_guard lock(mu_);
      if (stopping_) return;
      for (int r = 0; r < world_; ++r) {
        if (r == rank_) continue;
        Peer& p = peer(r);
        if (p.dead || !p.sock.valid()) continue;
        // POLLOUT only while backpressured bytes wait, else it would be
        // level-triggered busy polling on an idle writable socket.
        const short events =
            static_cast<short>(POLLIN | (p.outbox_pending ? POLLOUT : 0));
        fds.push_back({p.sock.fd(), events, 0});
        fd_rank.push_back(r);
      }
    }
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    const int rc = ::poll(fds.data(), fds.size(), next_deadline_ms(base_ms));
    if (rc > 0) {
      if (fds.back().revents & POLLIN) {
        char buf[256];  // drain every pending poke in one gulp
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
        {
          std::lock_guard lock(mu_);
          if (stopping_) return;
        }
      }
      for (std::size_t i = 0; i + 1 < fds.size(); ++i) {
        const int src = fd_rank[i];
        if (fds[i].revents & POLLOUT) drain_outbox(src);
        if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        Peer& p = peer(src);
        // Drain the readable bytes without ever blocking: frames arrive in
        // arbitrary fragments, accumulate in rx_buf, and are handled as each
        // completes. The reader must not park inside a recv mid-frame — a
        // frame larger than the kernel buffers only finishes arriving if
        // this loop keeps coming back around to drain its own outbox, which
        // is what frees the peer's writes (and, transitively, the bytes this
        // side is waiting on). kMaxBurstBytes bounds one socket's turn so
        // the other sockets still get serviced under a sustained blast.
        std::size_t burst = 0;
        bool keep_reading = true;
        while (keep_reading && burst < kMaxBurstBytes) {
          ssize_t got = 0;
          try {
            got = p.sock.recv_some(chunk.data(), chunk.size());
          } catch (const Error& e) {
            mark_dead(src, e.what());
            break;
          }
          if (got < 0) break;  // drained for now; poll re-arms POLLIN
          if (got == 0) {      // EOF
            bool graceful;
            {
              std::lock_guard lock(mu_);
              graceful = p.goodbye;
            }
            mark_dead(
                src,
                !p.rx_buf.empty()
                    ? "connection closed mid-frame (" +
                          std::to_string(p.rx_buf.size()) +
                          " bytes of a frame pending)"
                : graceful ? "peer closed the connection (graceful shutdown)"
                           : "connection closed without a goodbye",
                /*graceful=*/graceful && p.rx_buf.empty());
            break;
          }
          p.last_rx = Clock::now();
          burst += static_cast<std::size_t>(got);
          p.rx_buf.insert(p.rx_buf.end(), chunk.data(), chunk.data() + got);
          // Handle every frame now complete in rx_buf; keep a partial tail.
          std::size_t off = 0;
          try {
            while (p.rx_buf.size() - off >= kHeaderBytes) {
              const FrameHeader h = decode_header(p.rx_buf.data() + off);
              // The trace-context trailer rides after the payload, outside
              // len/crc — it is part of this frame's wire footprint.
              const std::size_t trailer =
                  (h.flags & kFlagCarriesCtx) ? kCtxTrailerBytes : 0;
              if (p.rx_buf.size() - off < kHeaderBytes + h.len + trailer)
                break;
              const std::byte* body = p.rx_buf.data() + off + kHeaderBytes;
              if (h.len) {
                PEACHY_REQUIRE(crc32(body, h.len) == h.crc,
                               "payload CRC mismatch on a "
                                   << h.len << "-byte frame (corrupt link?)");
              }
              std::vector<std::byte> payload(body, body + h.len);
              const std::byte* ctx_trailer = trailer ? body + h.len : nullptr;
              off += kHeaderBytes + h.len + trailer;
              handle_frame(src, h, std::move(payload), ctx_trailer);
              {
                std::lock_guard lock(mu_);
                if (p.dead) {
                  keep_reading = false;
                  break;
                }
              }
            }
          } catch (const Error& e) {  // header/CRC: the stream is corrupt
            mark_dead(src, e.what());
            keep_reading = false;
          }
          if (off) {
            p.rx_buf.erase(p.rx_buf.begin(),
                           p.rx_buf.begin() + static_cast<std::ptrdiff_t>(off));
          }
        }
      }
    }
    // Service pass: write due held frames, flush staging (piggybacking
    // acks), answer each drained burst with one cumulative ack, and run
    // the per-peer retransmit timers.
    const auto now = Clock::now();
    for (int r = 0; r < world_; ++r) {
      if (r == rank_) continue;
      {
        std::lock_guard lock(mu_);
        if (peer(r).dead || !peer(r).sock.valid()) continue;
      }
      release_held(r, now);
      flush_peer(r);
      send_pure_ack(r);
      retransmit_pass(r, now);
    }
    heartbeat_pass();  // rc < 0 is EINTR; rc == 0 is the idle tick
    clock_pass();
  }
}

void TcpTransport::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // send() only promises window admission; shutdown is where delivery of
  // everything is confirmed. Flush staging, then drain the windows (the
  // reader keeps retransmitting and releasing held frames meanwhile).
  flush_all();
  {
    std::unique_lock lock(mu_);
    cv_.wait_for(lock, std::chrono::milliseconds(opt_.goodbye_timeout_ms),
                 [&] {
                   for (int r = 0; r < world_; ++r) {
                     if (r == rank_) continue;
                     const Peer& p = *peers_[static_cast<std::size_t>(r)];
                     if (!p.dead && !p.unacked.empty()) return false;
                   }
                   return true;
                 });
  }
  // The drain is bounded, so it can expire with frames still unacked.
  // Abandoning those silently would break the delivery contract invisibly
  // (the loss would only surface as a confusing recv failure on the peer):
  // count every abandoned frame and kill the link, so the sender sees
  // PeerDied on any further use and stats()/net.frames_abandoned record
  // exactly how many accepted sends were never confirmed.
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) continue;
    std::size_t leftover = 0;
    {
      std::lock_guard lock(mu_);
      const Peer& p = peer(r);
      if (!p.dead) leftover = p.unacked.size();
      frames_abandoned_ += leftover;
    }
    if (!leftover) continue;
    if (obs::enabled())
      obs_frames_abandoned().add(static_cast<std::int64_t>(leftover));
    mark_dead(r, "shutdown abandoned " + std::to_string(leftover) +
                     " unacked frame(s): no ack within the " +
                     std::to_string(opt_.goodbye_timeout_ms) +
                     " ms drain budget");
  }
  FrameHeader bye;
  bye.type = FrameType::kGoodbye;
  bye.src = rank_;
  const std::vector<std::byte> frame = encode_frame(bye, nullptr, 0);
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) continue;
    Peer& p = peer(r);
    {
      std::lock_guard lock(mu_);
      if (p.dead) continue;
    }
    try {
      write_frame(r, frame);
    } catch (const Error&) {
      // a peer that died first still counts as shut down
    }
  }
  // Drain: wait (bounded) until every peer said goodbye or died, so no rank
  // tears its sockets down while a neighbour still awaits an ACK.
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(opt_.goodbye_timeout_ms), [&] {
    for (int r = 0; r < world_; ++r) {
      if (r == rank_) continue;
      const Peer& p = *peers_[static_cast<std::size_t>(r)];
      if (!p.goodbye && !p.dead) return false;
    }
    return true;
  });
}

TcpTransport::Stats TcpTransport::stats() const {
  Stats s;
  {
    std::lock_guard lock(mu_);
    s.retransmits = retransmits_;
    s.window_stalls = window_stalls_;
    s.acks_sent = acks_sent_;
    s.heartbeats_sent = heartbeats_sent_;
    s.frames_abandoned = frames_abandoned_;
  }
  // Injector counters are written under each peer's send_mutex; reading
  // them here is only exact once the world has quiesced (which is when the
  // runtime collects stats).
  for (const auto& p : peers_) {
    if (!p || !p->fault) continue;
    const auto& c = p->fault->counters();
    s.fault.dropped += c.dropped;
    s.fault.duplicated += c.duplicated;
    s.fault.delayed += c.delayed;
    s.fault.severed += c.severed;
  }
  return s;
}

}  // namespace peachy::net
