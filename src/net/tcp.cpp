#include "net/tcp.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "net/wire.hpp"
#include "obs/obs.hpp"

namespace peachy::net {

namespace {

using Clock = std::chrono::steady_clock;

obs::Counter& obs_frames_sent() {
  static obs::Counter& c = obs::Registry::global().counter("net.frames_sent");
  return c;
}
obs::Counter& obs_frames_received() {
  static obs::Counter& c =
      obs::Registry::global().counter("net.frames_received");
  return c;
}
obs::Counter& obs_retransmits() {
  static obs::Counter& c = obs::Registry::global().counter("net.retransmits");
  return c;
}
obs::Histogram& obs_frame_bytes() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("net.frame_bytes");
  return h;
}
obs::Histogram& obs_rtt_ns() {
  static obs::Histogram& h = obs::Registry::global().histogram("net.rtt_ns");
  return h;
}
obs::Counter& obs_heartbeats_sent() {
  static obs::Counter& c =
      obs::Registry::global().counter("net.heartbeats_sent");
  return c;
}
obs::Counter& obs_heartbeats_missed() {
  static obs::Counter& c =
      obs::Registry::global().counter("net.heartbeats_missed");
  return c;
}

}  // namespace

TcpTransport::TcpTransport(int rank, int world, int rendezvous_port,
                           const TcpOptions& options)
    : rank_(rank), world_(world), opt_(options) {
  PEACHY_REQUIRE(world >= 1, "tcp world needs >= 1 rank, got " << world);
  PEACHY_REQUIRE(rank >= 0 && rank < world,
                 "bad rank " << rank << " for world of " << world);
  obs::Span connect_span("net.connect", "net");
  connect_span.arg("rank", rank);
  connect_span.arg("world", world);

  peers_.resize(static_cast<std::size_t>(world));
  listen_ = Socket::listen_on(opt_.host, 0, world + 8);
  session_ = rendezvous_register(opt_.host, rendezvous_port, rank, world,
                                 listen_.local_port(),
                                 opt_.connect_timeout_ms);

  const auto make_peer = [&](int r, Socket sock) {
    auto p = std::make_unique<Peer>();
    p->sock = std::move(sock);
    p->last_rx = Clock::now();  // the handshake just proved liveness
    if (opt_.fault.active())
      p->fault = std::make_unique<FaultInjector>(opt_.fault, rank_, r);
    peers_[static_cast<std::size_t>(r)] = std::move(p);
  };

  // Dial every lower rank (lower ranks are already accepting by induction:
  // rank 0 dials nobody, so its accept loop starts first).
  for (int j = 0; j < rank; ++j) {
    Socket s = Socket::connect_to(opt_.host, session_.peer_ports[
                                      static_cast<std::size_t>(j)],
                                  opt_.connect_timeout_ms);
    FrameHeader hello;
    hello.type = FrameType::kHello;
    hello.src = rank_;
    hello.tag = j;
    send_frame(s, hello);
    FrameHeader h;
    std::vector<std::byte> payload;
    PEACHY_REQUIRE(recv_frame(s, h, payload, opt_.connect_timeout_ms),
                   "rank " << rank_ << ": rank " << j
                           << " closed during the handshake");
    PEACHY_REQUIRE(h.type == FrameType::kHelloAck,
                   "rank " << rank_ << ": expected HELLO_ACK from rank " << j
                           << ", got frame type " << static_cast<int>(h.type));
    make_peer(j, std::move(s));
  }

  // Accept every higher rank, in whatever order they arrive.
  for (int n = 0; n < world - rank - 1; ++n) {
    Socket s = listen_.accept(opt_.connect_timeout_ms);
    FrameHeader h;
    std::vector<std::byte> payload;
    PEACHY_REQUIRE(recv_frame(s, h, payload, opt_.connect_timeout_ms),
                   "rank " << rank_ << ": peer closed before HELLO");
    PEACHY_REQUIRE(h.type == FrameType::kHello,
                   "rank " << rank_ << ": expected HELLO, got frame type "
                           << static_cast<int>(h.type));
    PEACHY_REQUIRE(h.tag == rank_, "rank " << rank_
                       << ": HELLO addressed to rank " << h.tag);
    PEACHY_REQUIRE(h.src > rank_ && h.src < world,
                   "rank " << rank_ << ": HELLO from unexpected rank "
                           << h.src);
    PEACHY_REQUIRE(!peers_[static_cast<std::size_t>(h.src)],
                   "rank " << rank_ << ": duplicate connection from rank "
                           << h.src);
    FrameHeader ack;
    ack.type = FrameType::kHelloAck;
    ack.src = rank_;
    ack.tag = h.src;
    send_frame(s, ack);
    make_peer(h.src, std::move(s));
  }

  PEACHY_CHECK(::pipe2(wake_pipe_, O_CLOEXEC) == 0);
  reader_ = std::thread([this] { reader_loop(); });
  if (obs::enabled())
    obs::Tracer::global().instant(
        "net.mesh_up", "net",
        {{"rank", rank_}, {"links", world_ - 1}});
}

TcpTransport::~TcpTransport() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  if (wake_pipe_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] ssize_t rc = ::write(wake_pipe_[1], &b, 1);
  }
  if (reader_.joinable()) reader_.join();
  for (int fd : wake_pipe_)
    if (fd >= 0) ::close(fd);
}

void TcpTransport::throw_peer_dead(int peer_rank) {
  std::string why;
  {
    std::lock_guard lock(mu_);
    why = peer(peer_rank).why;
  }
  throw PeerDied(rank_, peer_rank, why.empty() ? "connection lost" : why);
}

void TcpTransport::mark_dead(int src, const std::string& why) {
  {
    std::lock_guard lock(mu_);
    Peer& p = peer(src);
    if (!p.dead) {
      p.dead = true;
      p.why = why;
    }
  }
  cv_.notify_all();
}

void TcpTransport::write_frame(Peer& p, const std::vector<std::byte>& frame) {
  std::lock_guard lock(p.write_mutex);
  p.sock.send_all(frame.data(), frame.size());
}

void TcpTransport::send(int dest, int tag, const void* data,
                        std::size_t bytes) {
  if (dest == rank_) {  // self-send never touches a socket
    std::vector<std::byte> payload(bytes);
    if (bytes) std::memcpy(payload.data(), data, bytes);
    {
      std::lock_guard lock(mu_);
      channels_[{rank_, tag}].push_back(std::move(payload));
    }
    cv_.notify_all();
    return;
  }

  Peer& p = peer(dest);
  std::lock_guard send_lock(p.send_mutex);

  FrameHeader h;
  h.type = FrameType::kData;
  h.src = rank_;
  h.tag = tag;
  h.seq = p.send_seq++;
  const std::vector<std::byte> frame = encode_frame(h, data, bytes);

  // Judge the fresh frame once; retransmissions below bypass the injector.
  FaultInjector::Decision fault;
  if (p.fault) fault = p.fault->next();
  if (fault.sever) {
    p.sock.shutdown_both();
    mark_dead(dest, "fault injector severed the connection");
    throw_peer_dead(dest);
  }
  if (fault.delay_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));

  const auto t0 = Clock::now();
  int timeout_ms = opt_.ack_timeout_ms;
  for (int attempt = 0;; ++attempt) {
    {
      std::unique_lock lock(mu_);
      if (p.dead) {
        lock.unlock();
        throw_peer_dead(dest);
      }
    }
    const bool skip_write = attempt == 0 && fault.drop;
    if (!skip_write) {
      try {
        write_frame(p, frame);
        if (attempt == 0 && fault.duplicate) write_frame(p, frame);
      } catch (const Error& e) {
        mark_dead(dest, e.what());
        throw_peer_dead(dest);
      }
      if (obs::enabled()) {
        obs_frames_sent().add(1);
        obs_frame_bytes().observe(static_cast<std::int64_t>(frame.size()));
      }
    }
    {
      std::unique_lock lock(mu_);
      const bool acked = cv_.wait_for(
          lock, std::chrono::milliseconds(timeout_ms),
          [&] { return p.acked > h.seq || p.dead; });
      if (p.dead) {
        lock.unlock();
        throw_peer_dead(dest);
      }
      if (acked && p.acked > h.seq) break;
    }
    if (attempt >= opt_.max_retries) {
      mark_dead(dest, "no ACK for seq " + std::to_string(h.seq) + " after " +
                          std::to_string(opt_.max_retries) +
                          " retransmissions");
      throw_peer_dead(dest);
    }
    {
      std::lock_guard lock(mu_);
      ++retransmits_;
    }
    if (obs::enabled()) obs_retransmits().add(1);
    timeout_ms = std::min(timeout_ms * 2, 10000);
  }
  if (obs::enabled()) {
    obs_rtt_ns().observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Clock::now() - t0)
                             .count());
    obs::Tracer::global().instant(
        "net.send", "net",
        {{"src", rank_},
         {"dst", dest},
         {"tag", tag},
         {"bytes", static_cast<std::int64_t>(bytes)}});
  }
}

std::vector<std::byte> TcpTransport::recv(int src, int tag) {
  obs::Span span("net.recv", "net");
  span.arg("src", src);
  span.arg("dst", rank_);
  span.arg("tag", tag);
  std::unique_lock lock(mu_);
  auto& channel = channels_[{src, tag}];
  // A peer that said GOODBYE will never send again — fail a still-pending
  // recv right away instead of waiting for the socket to actually close.
  const bool got = cv_.wait_for(
      lock, std::chrono::milliseconds(opt_.recv_timeout_ms), [&] {
        return !channel.empty() ||
               (src != rank_ && (peer(src).dead || peer(src).goodbye));
      });
  if (channel.empty()) {
    if (src != rank_ && (peer(src).dead || peer(src).goodbye)) {
      const std::string why = peer(src).why;
      lock.unlock();
      throw PeerDied(rank_, src,
                     why.empty() ? "peer shut down with this recv pending"
                                 : why);
    }
    PEACHY_REQUIRE(got, "rank " << rank_ << ": recv from rank " << src
                                << " tag " << tag << " timed out after "
                                << opt_.recv_timeout_ms << " ms");
  }
  std::vector<std::byte> payload = std::move(channel.front());
  channel.pop_front();
  return payload;
}

void TcpTransport::handle_frame(int src, const FrameHeader& h,
                                std::vector<std::byte> payload) {
  Peer& p = peer(src);
  switch (h.type) {
    case FrameType::kAck: {
      {
        std::lock_guard lock(mu_);
        p.acked = std::max(p.acked, h.seq + 1);
      }
      cv_.notify_all();
      break;
    }
    case FrameType::kData: {
      if (h.src != src) {
        mark_dead(src, "DATA frame claims src rank " +
                           std::to_string(h.src) + " on the link to rank " +
                           std::to_string(src));
        break;
      }
      bool fresh = false;
      {
        std::lock_guard lock(mu_);
        if (h.seq == p.recv_seq) {
          ++p.recv_seq;
          fresh = true;
          channels_[{src, h.tag}].push_back(std::move(payload));
        } else if (h.seq > p.recv_seq) {
          // Impossible under stop-and-wait over ordered TCP.
          p.dead = true;
          p.why = "sequence gap: got " + std::to_string(h.seq) +
                  ", expected " + std::to_string(p.recv_seq);
        }
        // h.seq < recv_seq: an injected duplicate (or a retransmission that
        // crossed our ACK) — drop the payload, but ack it again below.
      }
      cv_.notify_all();
      if (obs::enabled() && fresh) obs_frames_received().add(1);
      FrameHeader ack;
      ack.type = FrameType::kAck;
      ack.src = rank_;
      ack.seq = h.seq;
      try {
        const std::vector<std::byte> frame = encode_frame(ack, nullptr, 0);
        write_frame(p, frame);
      } catch (const Error& e) {
        mark_dead(src, e.what());
      }
      break;
    }
    case FrameType::kGoodbye: {
      {
        std::lock_guard lock(mu_);
        p.goodbye = true;
      }
      cv_.notify_all();
      break;
    }
    case FrameType::kPing:
      // Pure liveness proof — last_rx was already refreshed by the reader.
      break;
    default:
      mark_dead(src, "unexpected frame type " +
                         std::to_string(static_cast<int>(h.type)) +
                         " after the handshake");
  }
}

void TcpTransport::heartbeat_pass() {
  if (opt_.heartbeat_ms <= 0) return;
  const auto now = Clock::now();
  const int suspicion_ms = opt_.suspicion_timeout_ms > 0
                               ? opt_.suspicion_timeout_ms
                               : 4 * opt_.heartbeat_ms;
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) continue;
    Peer& p = peer(r);
    {
      std::lock_guard lock(mu_);
      // A peer that said goodbye is draining, not dead — stop judging it.
      if (p.dead || p.goodbye) continue;
    }
    if (!p.sock.valid()) continue;
    const auto silence_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - p.last_rx)
            .count();
    if (silence_ms > suspicion_ms) {
      if (obs::enabled()) obs_heartbeats_missed().add(1);
      mark_dead(r, "no frames from rank " + std::to_string(r) + " for " +
                       std::to_string(silence_ms) +
                       " ms (heartbeat suspicion timeout " +
                       std::to_string(suspicion_ms) + " ms)");
      continue;
    }
    if (now - p.last_ping_tx <
        std::chrono::milliseconds(opt_.heartbeat_ms))
      continue;
    p.last_ping_tx = now;
    FrameHeader ping;
    ping.type = FrameType::kPing;
    ping.src = rank_;
    try {
      write_frame(p, encode_frame(ping, nullptr, 0));
    } catch (const Error& e) {
      mark_dead(r, e.what());
      continue;
    }
    {
      std::lock_guard lock(mu_);
      ++heartbeats_sent_;
    }
    if (obs::enabled()) obs_heartbeats_sent().add(1);
  }
}

void TcpTransport::reader_loop() {
  // With heartbeats on, wake at least twice per period so pings go out and
  // silence is noticed on time even when no socket turns readable.
  const int poll_ms = opt_.heartbeat_ms > 0
                          ? std::clamp(opt_.heartbeat_ms / 2, 1, 500)
                          : 500;
  for (;;) {
    std::vector<pollfd> fds;
    std::vector<int> fd_rank;
    {
      std::lock_guard lock(mu_);
      if (stopping_) return;
      for (int r = 0; r < world_; ++r) {
        if (r == rank_) continue;
        Peer& p = peer(r);
        if (p.dead || !p.sock.valid()) continue;
        fds.push_back({p.sock.fd(), POLLIN, 0});
        fd_rank.push_back(r);
      }
    }
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    const int rc = ::poll(fds.data(), fds.size(), poll_ms);
    if (rc > 0) {
      if (fds.back().revents & POLLIN) return;  // destructor wake-up
      for (std::size_t i = 0; i + 1 < fds.size(); ++i) {
        if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        const int src = fd_rank[i];
        Peer& p = peer(src);
        FrameHeader h;
        std::vector<std::byte> payload;
        try {
          if (!recv_frame(p.sock, h, payload, opt_.recv_timeout_ms)) {
            bool graceful;
            {
              std::lock_guard lock(mu_);
              graceful = p.goodbye;
            }
            mark_dead(src,
                      graceful
                          ? "peer closed the connection (graceful shutdown)"
                          : "connection closed without a goodbye");
            continue;
          }
        } catch (const Error& e) {
          mark_dead(src, e.what());
          continue;
        }
        p.last_rx = Clock::now();
        handle_frame(src, h, std::move(payload));
      }
    }
    heartbeat_pass();  // rc < 0 is EINTR; rc == 0 is the idle tick
  }
}

void TcpTransport::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  FrameHeader bye;
  bye.type = FrameType::kGoodbye;
  bye.src = rank_;
  const std::vector<std::byte> frame = encode_frame(bye, nullptr, 0);
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) continue;
    Peer& p = peer(r);
    {
      std::lock_guard lock(mu_);
      if (p.dead) continue;
    }
    try {
      write_frame(p, frame);
    } catch (const Error&) {
      // a peer that died first still counts as shut down
    }
  }
  // Drain: wait (bounded) until every peer said goodbye or died, so no rank
  // tears its sockets down while a neighbour still awaits an ACK.
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(opt_.goodbye_timeout_ms), [&] {
    for (int r = 0; r < world_; ++r) {
      if (r == rank_) continue;
      const Peer& p = *peers_[static_cast<std::size_t>(r)];
      if (!p.goodbye && !p.dead) return false;
    }
    return true;
  });
}

TcpTransport::Stats TcpTransport::stats() const {
  Stats s;
  {
    std::lock_guard lock(mu_);
    s.retransmits = retransmits_;
    s.heartbeats_sent = heartbeats_sent_;
  }
  // Injector counters are written under each peer's send_mutex; reading
  // them here is only exact once the world has quiesced (which is when the
  // runtime collects stats).
  for (const auto& p : peers_) {
    if (!p || !p->fault) continue;
    const auto& c = p->fault->counters();
    s.fault.dropped += c.dropped;
    s.fault.duplicated += c.duplicated;
    s.fault.delayed += c.delayed;
    s.fault.severed += c.severed;
  }
  return s;
}

}  // namespace peachy::net
