// ProcessLauncher: forks the worker processes behind mpp::run_spawned.
//
// Two spawning styles:
//  * fork_workers — plain fork(); the child shares the parent's code and
//    runs a callback directly. Cheapest path to real address-space-isolated
//    ranks on one machine.
//  * exec_workers — fork() + execv() of a caller-supplied command line
//    (typically the current binary re-invoked with a filter that routes
//    straight back to the same mpp::run_spawned call site). The worker
//    discovers its identity through PEACHY_MPP_* environment variables.
//
// wait_all() is deadline-bounded: stragglers are SIGKILLed and reported
// instead of hanging the launcher — a crashed worker must surface as an
// error, never as a stuck test.
//
// Both spawn styles record their recipe, so respawn(rank) can fork a
// replacement for a single failed rank later — the building block of the
// supervised restart loop in mpp::run_spawned.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace peachy::net {

/// Kernel-enforced resource fences applied to every child between fork and
/// the recipe/exec. Zero means "leave the inherited limit alone".
struct ChildLimits {
  std::uint64_t address_space_bytes = 0;  // RLIMIT_AS
  std::uint64_t cpu_seconds = 0;          // RLIMIT_CPU (SIGXCPU then SIGKILL)

  bool any() const { return address_space_bytes != 0 || cpu_seconds != 0; }
};

/// Coarse classification of a wait_all exit code, for callers that must
/// triage "how did this job die" without string-matching.
enum class ExitClass {
  kClean,     // exit(0)
  kNonzero,   // exit(n), n != 0
  kSignaled,  // killed by a signal (128+sig or the 255 deadline kill)
};

class ProcessLauncher {
 public:
  ~ProcessLauncher();

  /// Applies to children spawned by any later fork_workers / exec_workers /
  /// respawn call. Limits are set in the child, so a respawned rank gets
  /// the same fence as the original.
  void set_child_limits(const ChildLimits& limits) { limits_ = limits; }

  /// Forks `n` children; child i runs `child_fn(i)` and _exits with its
  /// return value (it never returns into the caller's stack).
  void fork_workers(int n, const std::function<int(int rank)>& child_fn);

  /// Forks `n` children that execv `argv` with `env_for_rank(rank)`
  /// appended to the environment. argv[0] must be an executable path.
  void exec_workers(
      int n, const std::vector<std::string>& argv,
      const std::function<std::vector<std::pair<std::string, std::string>>(
          int rank)>& env_for_rank);

  /// Forks a fresh worker for `rank` from the recipe captured by the last
  /// fork_workers/exec_workers call. A still-running previous incarnation
  /// of that rank is SIGKILLed and reaped first. Returns the new pid.
  pid_t respawn(int rank);

  /// Waits for every child; after `timeout_ms`, survivors are SIGKILLed.
  /// Returns one exit code per rank (128+signal for signal deaths, 255 for
  /// a child that had to be killed).
  std::vector<int> wait_all(int timeout_ms);

  /// SIGKILLs every child still running (error-path cleanup).
  void kill_all();

  /// Sends `sig` (typically SIGTERM) to every live child without reaping —
  /// the polite half of the SIGTERM -> grace -> SIGKILL escalation. The
  /// caller still owns the reap via wait_all/kill_all.
  void terminate_all(int sig);

  int spawned() const { return static_cast<int>(pids_.size()); }

  /// Largest resident-set peak (bytes) observed across every child reaped
  /// by this launcher — wait_all and respawn reap with wait4, so the value
  /// accumulates over restarts too. 0 until the first child is reaped.
  std::uint64_t peak_rss_bytes() const;

  /// Snapshot of children not yet reaped (for tests that target a specific
  /// worker with a signal). Entries are -1 once reaped.
  std::vector<pid_t> pids() const;

 private:
  pid_t spawn_one(int rank);

  // Guards pids_: a supervisor watchdog thread may call terminate_all /
  // kill_all while the launcher thread reaps in wait_all.
  mutable std::mutex mu_;
  std::vector<pid_t> pids_;  // indexed by rank; -1 = reaped / never spawned
  std::uint64_t peak_rss_bytes_ = 0;  // max ru_maxrss over reaped children
  ChildLimits limits_;
  // Exactly one of these recipes is set after the first spawn call.
  std::function<int(int)> fork_recipe_;
  std::vector<std::string> exec_argv_;
  std::function<std::vector<std::pair<std::string, std::string>>(int)>
      exec_env_;
};

/// Coarse triage of a wait_all exit code (see ExitClass).
ExitClass classify_exit_code(int code);

/// Human-readable root cause for a wait_all exit code, e.g.
/// "killed by signal 9 (Killed)" or "exec failed (exit code 127)".
std::string describe_exit_code(int code);

}  // namespace peachy::net
