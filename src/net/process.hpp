// ProcessLauncher: forks the worker processes behind mpp::run_spawned.
//
// Two spawning styles:
//  * fork_workers — plain fork(); the child shares the parent's code and
//    runs a callback directly. Cheapest path to real address-space-isolated
//    ranks on one machine.
//  * exec_workers — fork() + execv() of a caller-supplied command line
//    (typically the current binary re-invoked with a filter that routes
//    straight back to the same mpp::run_spawned call site). The worker
//    discovers its identity through PEACHY_MPP_* environment variables.
//
// wait_all() is deadline-bounded: stragglers are SIGKILLed and reported
// instead of hanging the launcher — a crashed worker must surface as an
// error, never as a stuck test.
//
// Both spawn styles record their recipe, so respawn(rank) can fork a
// replacement for a single failed rank later — the building block of the
// supervised restart loop in mpp::run_spawned.
#pragma once

#include <sys/types.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace peachy::net {

class ProcessLauncher {
 public:
  ~ProcessLauncher();

  /// Forks `n` children; child i runs `child_fn(i)` and _exits with its
  /// return value (it never returns into the caller's stack).
  void fork_workers(int n, const std::function<int(int rank)>& child_fn);

  /// Forks `n` children that execv `argv` with `env_for_rank(rank)`
  /// appended to the environment. argv[0] must be an executable path.
  void exec_workers(
      int n, const std::vector<std::string>& argv,
      const std::function<std::vector<std::pair<std::string, std::string>>(
          int rank)>& env_for_rank);

  /// Forks a fresh worker for `rank` from the recipe captured by the last
  /// fork_workers/exec_workers call. A still-running previous incarnation
  /// of that rank is SIGKILLed and reaped first. Returns the new pid.
  pid_t respawn(int rank);

  /// Waits for every child; after `timeout_ms`, survivors are SIGKILLed.
  /// Returns one exit code per rank (128+signal for signal deaths, 255 for
  /// a child that had to be killed).
  std::vector<int> wait_all(int timeout_ms);

  /// SIGKILLs every child still running (error-path cleanup).
  void kill_all();

  int spawned() const { return static_cast<int>(pids_.size()); }

 private:
  pid_t spawn_one(int rank);

  std::vector<pid_t> pids_;  // indexed by rank; -1 = reaped / never spawned
  // Exactly one of these recipes is set after the first spawn call.
  std::function<int(int)> fork_recipe_;
  std::vector<std::string> exec_argv_;
  std::function<std::vector<std::pair<std::string, std::string>>(int)>
      exec_env_;
};

/// Human-readable root cause for a wait_all exit code, e.g.
/// "killed by signal 9 (Killed)" or "exec failed (exit code 127)".
std::string describe_exit_code(int code);

}  // namespace peachy::net
