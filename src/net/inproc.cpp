#include "net/inproc.hpp"

#include <cstring>
#include <utility>

#include "core/error.hpp"
#include "obs/cluster.hpp"

namespace peachy::net {

Transport::~Transport() = default;

InprocHub::InprocHub(int ranks)
    : ranks_(ranks), mailboxes_(ranks > 0 ? static_cast<std::size_t>(ranks) : 0) {
  PEACHY_REQUIRE(ranks >= 1, "world needs >= 1 rank, got " << ranks);
}

InprocTransport::InprocTransport(std::shared_ptr<InprocHub> hub, int rank)
    : hub_(std::move(hub)), rank_(rank) {}

void InprocTransport::send(int dest, int tag, const void* data,
                           std::size_t bytes) {
  InprocHub::Delivery delivery;
  delivery.payload.resize(bytes);
  if (bytes) std::memcpy(delivery.payload.data(), data, bytes);
  // Same propagation rule as the tcp backend: a message sent under an
  // active trace context carries it (obs-gated so the disabled path costs
  // one relaxed load).
  if (obs::enabled()) {
    const obs::cluster::TraceContext ctx = obs::cluster::current();
    if (ctx.valid()) {
      delivery.info.trace_id = ctx.trace_id;
      delivery.info.span_id = ctx.span_id;
      delivery.info.has_ctx = true;
    }
  }
  auto& box = hub_->mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lock(box.mutex);
    box.channels[{rank_, tag}].push_back(std::move(delivery));
  }
  box.cv.notify_all();
}

std::vector<std::byte> InprocTransport::recv(int src, int tag, MsgInfo* info) {
  auto& box = hub_->mailboxes_[static_cast<std::size_t>(rank_)];
  std::unique_lock lock(box.mutex);
  auto& channel = box.channels[{src, tag}];
  box.cv.wait(lock, [&channel] { return !channel.empty(); });
  InprocHub::Delivery delivery = std::move(channel.front());
  channel.pop_front();
  if (info) *info = delivery.info;
  return std::move(delivery.payload);
}

bool InprocTransport::try_recv(int src, int tag, std::vector<std::byte>& out,
                               MsgInfo* info) {
  auto& box = hub_->mailboxes_[static_cast<std::size_t>(rank_)];
  std::lock_guard lock(box.mutex);
  auto& channel = box.channels[{src, tag}];
  if (channel.empty()) return false;
  InprocHub::Delivery delivery = std::move(channel.front());
  channel.pop_front();
  if (info) *info = delivery.info;
  out = std::move(delivery.payload);
  return true;
}

}  // namespace peachy::net
