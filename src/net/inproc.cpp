#include "net/inproc.hpp"

#include <cstring>
#include <utility>

#include "core/error.hpp"

namespace peachy::net {

Transport::~Transport() = default;

InprocHub::InprocHub(int ranks)
    : ranks_(ranks), mailboxes_(ranks > 0 ? static_cast<std::size_t>(ranks) : 0) {
  PEACHY_REQUIRE(ranks >= 1, "world needs >= 1 rank, got " << ranks);
}

InprocTransport::InprocTransport(std::shared_ptr<InprocHub> hub, int rank)
    : hub_(std::move(hub)), rank_(rank) {}

void InprocTransport::send(int dest, int tag, const void* data,
                           std::size_t bytes) {
  std::vector<std::byte> payload(bytes);
  if (bytes) std::memcpy(payload.data(), data, bytes);
  auto& box = hub_->mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lock(box.mutex);
    box.channels[{rank_, tag}].push_back(std::move(payload));
  }
  box.cv.notify_all();
}

std::vector<std::byte> InprocTransport::recv(int src, int tag) {
  auto& box = hub_->mailboxes_[static_cast<std::size_t>(rank_)];
  std::unique_lock lock(box.mutex);
  auto& channel = box.channels[{src, tag}];
  box.cv.wait(lock, [&channel] { return !channel.empty(); });
  std::vector<std::byte> payload = std::move(channel.front());
  channel.pop_front();
  return payload;
}

}  // namespace peachy::net
