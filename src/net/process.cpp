#include "net/process.hpp"

#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "core/error.hpp"

namespace peachy::net {

namespace {

using Clock = std::chrono::steady_clock;

// Child-side, between fork and recipe/exec: only async-signal-safe calls.
void apply_child_limits(const ChildLimits& limits) {
  if (limits.address_space_bytes != 0) {
    struct rlimit rl;
    rl.rlim_cur = static_cast<rlim_t>(limits.address_space_bytes);
    rl.rlim_max = static_cast<rlim_t>(limits.address_space_bytes);
    ::setrlimit(RLIMIT_AS, &rl);
  }
  if (limits.cpu_seconds != 0) {
    struct rlimit rl;
    rl.rlim_cur = static_cast<rlim_t>(limits.cpu_seconds);
    // Leave one second of headroom before the kernel's hard SIGKILL so the
    // SIGXCPU death is what surfaces in the exit status.
    rl.rlim_max = static_cast<rlim_t>(limits.cpu_seconds + 1);
    ::setrlimit(RLIMIT_CPU, &rl);
  }
}

}  // namespace

ProcessLauncher::~ProcessLauncher() {
  // Never leak children: if the launcher unwinds (an exception between
  // spawn and wait), take the workers down with it.
  std::lock_guard<std::mutex> lock(mu_);
  for (pid_t pid : pids_)
    if (pid > 0) ::kill(pid, SIGKILL);
  for (pid_t pid : pids_)
    if (pid > 0) ::waitpid(pid, nullptr, 0);
}

pid_t ProcessLauncher::spawn_one(int rank) {
  const pid_t pid = ::fork();
  PEACHY_REQUIRE(pid >= 0, "fork failed: " << std::strerror(errno));
  if (pid == 0) {
    if (limits_.any()) apply_child_limits(limits_);
    if (fork_recipe_) {
      int code = 1;
      try {
        code = fork_recipe_(rank);
      } catch (...) {
        code = 1;
      }
      ::_exit(code);
    }
    for (const auto& [key, value] : exec_env_(rank))
      ::setenv(key.c_str(), value.c_str(), 1);
    std::vector<char*> cargv;
    cargv.reserve(exec_argv_.size() + 1);
    for (const auto& a : exec_argv_)
      cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    ::_exit(127);  // exec failed
  }
  return pid;
}

void ProcessLauncher::fork_workers(int n,
                                   const std::function<int(int)>& child_fn) {
  fork_recipe_ = child_fn;
  exec_argv_.clear();
  exec_env_ = nullptr;
  for (int r = 0; r < n; ++r) respawn(r);
}

void ProcessLauncher::exec_workers(
    int n, const std::vector<std::string>& argv,
    const std::function<std::vector<std::pair<std::string, std::string>>(int)>&
        env_for_rank) {
  PEACHY_REQUIRE(!argv.empty(), "exec_workers needs a command line");
  fork_recipe_ = nullptr;
  exec_argv_ = argv;
  exec_env_ = env_for_rank;
  for (int r = 0; r < n; ++r) respawn(r);
}

namespace {

// ru_maxrss is KiB on Linux; fold one reaped child's peak into `acc`.
void fold_peak_rss(const struct rusage& usage, std::uint64_t& acc) {
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
  if (bytes > acc) acc = bytes;
}

}  // namespace

pid_t ProcessLauncher::respawn(int rank) {
  PEACHY_REQUIRE(rank >= 0, "respawn of negative rank " << rank);
  PEACHY_REQUIRE(fork_recipe_ || !exec_argv_.empty(),
                 "respawn(" << rank << ") before any spawn call set a recipe");
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<std::size_t>(rank) >= pids_.size())
    pids_.resize(static_cast<std::size_t>(rank) + 1, -1);
  pid_t& slot = pids_[static_cast<std::size_t>(rank)];
  if (slot > 0) {
    // The old incarnation may be live, a zombie, or already reaped by
    // wait_all; kill is advisory, the reap is what frees the slot.
    ::kill(slot, SIGKILL);
    struct rusage usage {};
    if (::wait4(slot, nullptr, 0, &usage) == slot)
      fold_peak_rss(usage, peak_rss_bytes_);
    slot = -1;
  }
  slot = spawn_one(rank);
  return slot;
}

std::vector<int> ProcessLauncher::wait_all(int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<int> codes(pids_.size(), -1);
  std::size_t done = 0;
  bool killed = false;
  while (done < pids_.size()) {
    for (std::size_t i = 0; i < pids_.size(); ++i) {
      if (codes[i] >= 0 || pids_[i] <= 0) continue;
      int status = 0;
      struct rusage usage {};
      const pid_t rc = ::wait4(pids_[i], &status, WNOHANG, &usage);
      if (rc == 0) continue;
      if (rc == pids_[i]) fold_peak_rss(usage, peak_rss_bytes_);
      if (WIFEXITED(status))
        codes[i] = WEXITSTATUS(status);
      else if (WIFSIGNALED(status))
        codes[i] = killed ? 255 : 128 + WTERMSIG(status);
      else
        codes[i] = 255;
      pids_[i] = -1;
      ++done;
    }
    if (done == pids_.size()) break;
    if (Clock::now() >= deadline && !killed) {
      for (pid_t pid : pids_)
        if (pid > 0) ::kill(pid, SIGKILL);
      killed = true;
    }
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    lock.lock();
  }
  pids_.clear();
  return codes;
}

void ProcessLauncher::kill_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (pid_t pid : pids_)
    if (pid > 0) ::kill(pid, SIGKILL);
}

void ProcessLauncher::terminate_all(int sig) {
  std::lock_guard<std::mutex> lock(mu_);
  for (pid_t pid : pids_)
    if (pid > 0) ::kill(pid, sig);
}

std::uint64_t ProcessLauncher::peak_rss_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_rss_bytes_;
}

std::vector<pid_t> ProcessLauncher::pids() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pids_;
}

ExitClass classify_exit_code(int code) {
  if (code == 0) return ExitClass::kClean;
  if (code == 255 || code > 128) return ExitClass::kSignaled;
  return ExitClass::kNonzero;
}

std::string describe_exit_code(int code) {
  if (code == 0) return "exited cleanly";
  if (code == 127) return "exec failed (exit code 127)";
  if (code == 255) return "SIGKILLed at the wait_all deadline";
  if (code > 128) {
    const int sig = code - 128;
    const char* name = ::strsignal(sig);
    return "killed by signal " + std::to_string(sig) +
           (name ? " (" + std::string(name) + ")" : "");
  }
  return "exited with code " + std::to_string(code);
}

}  // namespace peachy::net
