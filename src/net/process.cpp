#include "net/process.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "core/error.hpp"

namespace peachy::net {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

ProcessLauncher::~ProcessLauncher() {
  // Never leak children: if the launcher unwinds (an exception between
  // spawn and wait), take the workers down with it.
  kill_all();
  for (pid_t pid : pids_)
    if (pid > 0) ::waitpid(pid, nullptr, 0);
}

void ProcessLauncher::fork_workers(int n,
                                   const std::function<int(int)>& child_fn) {
  for (int r = 0; r < n; ++r) {
    const pid_t pid = ::fork();
    PEACHY_REQUIRE(pid >= 0, "fork failed: " << std::strerror(errno));
    if (pid == 0) {
      int code = 1;
      try {
        code = child_fn(r);
      } catch (...) {
        code = 1;
      }
      ::_exit(code);
    }
    pids_.push_back(pid);
  }
}

void ProcessLauncher::exec_workers(
    int n, const std::vector<std::string>& argv,
    const std::function<std::vector<std::pair<std::string, std::string>>(int)>&
        env_for_rank) {
  PEACHY_REQUIRE(!argv.empty(), "exec_workers needs a command line");
  for (int r = 0; r < n; ++r) {
    const pid_t pid = ::fork();
    PEACHY_REQUIRE(pid >= 0, "fork failed: " << std::strerror(errno));
    if (pid == 0) {
      for (const auto& [key, value] : env_for_rank(r))
        ::setenv(key.c_str(), value.c_str(), 1);
      std::vector<char*> cargv;
      cargv.reserve(argv.size() + 1);
      for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
      cargv.push_back(nullptr);
      ::execv(cargv[0], cargv.data());
      ::_exit(127);  // exec failed
    }
    pids_.push_back(pid);
  }
}

std::vector<int> ProcessLauncher::wait_all(int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::vector<int> codes(pids_.size(), -1);
  std::size_t done = 0;
  bool killed = false;
  while (done < pids_.size()) {
    for (std::size_t i = 0; i < pids_.size(); ++i) {
      if (codes[i] >= 0 || pids_[i] <= 0) continue;
      int status = 0;
      const pid_t rc = ::waitpid(pids_[i], &status, WNOHANG);
      if (rc == 0) continue;
      if (WIFEXITED(status))
        codes[i] = WEXITSTATUS(status);
      else if (WIFSIGNALED(status))
        codes[i] = killed ? 255 : 128 + WTERMSIG(status);
      else
        codes[i] = 255;
      pids_[i] = -1;
      ++done;
    }
    if (done == pids_.size()) break;
    if (Clock::now() >= deadline && !killed) {
      kill_all();
      killed = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  pids_.clear();
  return codes;
}

void ProcessLauncher::kill_all() {
  for (pid_t pid : pids_)
    if (pid > 0) ::kill(pid, SIGKILL);
}

}  // namespace peachy::net
