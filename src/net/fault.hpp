// Deterministic fault injection for the TCP transport.
//
// The injector sits on the *send* path of every connection and decides, per
// fresh data frame, whether to drop it, delay it, duplicate it, or sever
// the connection outright. Decisions are a pure function of
// (seed, src, dst, frame index), so a seeded run injects the exact same
// faults every time regardless of thread or process scheduling — which is
// what makes fault-injection tests reproducible. Retransmissions bypass the
// injector: a frame is judged once.
//
// Under the pipelined (sliding-window) transport the decisions act on
// individual frames of an in-flight stream, never on the sender thread:
//  * drop      — the first copy is never staged; the per-peer retransmit
//                timer recovers it without stalling the rest of the window.
//  * delay     — the frame is *held* (a hold-until timestamp) and written
//                late by the reader thread while newer frames go out on
//                time, creating genuine reordering on the wire; sleeping
//                the sender would instead delay the whole window.
//  * duplicate — both copies go out in the same writev batch; the
//                receiver's cumulative-seq bookkeeping (and its
//                reassembly map for out-of-order duplicates) guarantees a
//                payload is delivered at most once.
//  * sever     — the link is hard-closed and the send throws PeerDied.
#pragma once

#include <cstdint>
#include <string>

namespace peachy::net {

/// What to inject, with which probabilities. Inactive unless `seed` != 0.
struct FaultPlan {
  std::uint64_t seed = 0;        ///< 0 disables the injector entirely
  double drop = 0.0;             ///< P(frame is never written)
  double duplicate = 0.0;        ///< P(frame is written twice)
  double delay = 0.0;            ///< P(frame is written late)
  int delay_ms = 2;              ///< how late
  std::int64_t sever_after = -1; ///< hard-close after this many frames (-1 off)

  bool active() const {
    return seed != 0 &&
           (drop > 0 || duplicate > 0 || delay > 0 || sever_after >= 0);
  }

  /// Round-trips through a string so spawned (exec'd) workers inherit the
  /// plan via one environment variable.
  std::string encode() const;
  static FaultPlan decode(const std::string& text);
};

/// Per-connection decision stream. One instance per (src, dst) direction.
class FaultInjector {
 public:
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    bool sever = false;
    int delay_ms = 0;
  };

  struct Counters {
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
    std::uint64_t severed = 0;
  };

  FaultInjector(const FaultPlan& plan, int src, int dst);

  /// Judges the next fresh data frame and advances the stream.
  Decision next();

  const Counters& counters() const { return counters_; }

 private:
  FaultPlan plan_;
  std::uint64_t stream_;   // hash of (seed, src, dst)
  std::uint64_t frame_ = 0;
  Counters counters_;
};

}  // namespace peachy::net
