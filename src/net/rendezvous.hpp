// Rendezvous: how a world of TCP ranks finds itself.
//
// One well-known endpoint (the launcher's listener — the same process as
// rank 0 in the threaded tcp mode) accepts one connection per rank. Each
// rank REGISTERs its own peer-listener port; once all `world` ranks are in,
// the server broadcasts the full port TABLE and the ranks wire up a
// deterministic mesh (rank i dials every j < i, accepts every j > i).
//
// For spawned (multi-process) worlds the registration connection stays open
// and doubles as the result channel: after its body finishes, a worker
// sends one RESULT frame carrying success/failure, its comm stats, net
// fault counters, and an optional opaque result blob from rank 0. A worker
// that dies early shows up as EOF-without-RESULT, which the launcher turns
// into a named error instead of a hang.
#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace peachy::net {

/// What one worker tells the launcher when it finishes (or fails).
struct WorkerReport {
  bool reported = false;  ///< false => the worker died before reporting
  bool ok = false;
  std::string error;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t window_stalls = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t frames_abandoned = 0;
  std::uint64_t fault_dropped = 0;
  std::uint64_t fault_duplicated = 0;
  std::uint64_t fault_delayed = 0;
  std::uint64_t fault_severed = 0;
  std::vector<std::byte> result;  ///< rank 0's result blob, empty elsewhere
};

class RendezvousServer {
 public:
  /// Binds immediately (ephemeral port); serving starts with start() or
  /// serve(). `collect_results` keeps registrations open for RESULT frames.
  RendezvousServer(int world, bool collect_results, int timeout_ms);
  ~RendezvousServer();

  int port() const { return port_; }

  /// Serves on a background thread (threaded tcp mode).
  void start();

  /// Serves inline until every rank registered (and, when collecting,
  /// reported or died). Spawn mode calls this in the parent so no thread
  /// exists at fork() time.
  void serve();

  /// Joins the background thread and rethrows any serve() failure.
  void join();

  /// Forked children inherit the listening fd; they must drop it so the
  /// rendezvous dies with the launcher, not with the last worker.
  void close_listener_in_child();

  /// Valid after serve()/join(). Indexed by rank.
  const std::vector<WorkerReport>& reports() const { return reports_; }

 private:
  int world_;
  bool collect_results_;
  int timeout_ms_;
  Socket listener_;
  int port_ = 0;
  std::thread thread_;
  std::exception_ptr serve_error_;
  std::vector<WorkerReport> reports_;
};

/// A rank's side of the rendezvous: the open server connection plus the
/// port table it learned.
struct RendezvousSession {
  Socket sock;
  std::vector<int> peer_ports;  ///< indexed by rank
};

/// Connects, registers (rank, my_listen_port), and waits for the table.
RendezvousSession rendezvous_register(const std::string& host, int port,
                                      int rank, int world, int my_listen_port,
                                      int timeout_ms);

/// Sends the worker's RESULT frame over the (still open) session socket.
void rendezvous_report(const Socket& sock, int rank, const WorkerReport& r);

}  // namespace peachy::net
