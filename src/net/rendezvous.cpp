#include "net/rendezvous.hpp"

#include <poll.h>

#include <chrono>

#include "net/wire.hpp"
#include "obs/obs.hpp"

namespace peachy::net {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

std::vector<std::byte> encode_report(const WorkerReport& r) {
  std::vector<std::byte> out;
  out.push_back(static_cast<std::byte>(r.ok ? 1 : 0));
  append_u64(out, r.messages_sent);
  append_u64(out, r.bytes_sent);
  append_u64(out, r.retransmits);
  append_u64(out, r.window_stalls);
  append_u64(out, r.acks_sent);
  append_u64(out, r.frames_abandoned);
  append_u64(out, r.fault_dropped);
  append_u64(out, r.fault_duplicated);
  append_u64(out, r.fault_delayed);
  append_u64(out, r.fault_severed);
  append_u32(out, static_cast<std::uint32_t>(r.error.size()));
  append_bytes(out, r.error.data(), r.error.size());
  append_u32(out, static_cast<std::uint32_t>(r.result.size()));
  append_bytes(out, r.result.data(), r.result.size());
  return out;
}

WorkerReport decode_report(const std::vector<std::byte>& payload) {
  WorkerReport r;
  const std::byte* p = payload.data();
  const std::byte* end = p + payload.size();
  PEACHY_REQUIRE(p < end, "empty RESULT payload");
  r.reported = true;
  r.ok = std::to_integer<int>(*p++) != 0;
  r.messages_sent = read_u64(p, end);
  r.bytes_sent = read_u64(p, end);
  r.retransmits = read_u64(p, end);
  r.window_stalls = read_u64(p, end);
  r.acks_sent = read_u64(p, end);
  r.frames_abandoned = read_u64(p, end);
  r.fault_dropped = read_u64(p, end);
  r.fault_duplicated = read_u64(p, end);
  r.fault_delayed = read_u64(p, end);
  r.fault_severed = read_u64(p, end);
  const std::uint32_t errlen = read_u32(p, end);
  PEACHY_REQUIRE(end - p >= errlen, "truncated RESULT error string");
  r.error.assign(reinterpret_cast<const char*>(p), errlen);
  p += errlen;
  const std::uint32_t bloblen = read_u32(p, end);
  PEACHY_REQUIRE(end - p >= bloblen, "truncated RESULT blob");
  r.result.assign(p, p + bloblen);
  return r;
}

}  // namespace

RendezvousServer::RendezvousServer(int world, bool collect_results,
                                   int timeout_ms)
    : world_(world),
      collect_results_(collect_results),
      timeout_ms_(timeout_ms),
      listener_(Socket::listen_on("127.0.0.1", 0, world + 8)),
      reports_(static_cast<std::size_t>(world)) {
  PEACHY_REQUIRE(world >= 1, "rendezvous needs >= 1 rank, got " << world);
  port_ = listener_.local_port();
}

RendezvousServer::~RendezvousServer() {
  if (thread_.joinable()) thread_.join();
}

void RendezvousServer::start() {
  thread_ = std::thread([this] {
    try {
      serve();
    } catch (...) {
      serve_error_ = std::current_exception();
    }
  });
}

void RendezvousServer::join() {
  if (thread_.joinable()) thread_.join();
  if (serve_error_) std::rethrow_exception(serve_error_);
}

void RendezvousServer::close_listener_in_child() { listener_.close(); }

void RendezvousServer::serve() {
  obs::Span span("net.rendezvous", "net");
  span.arg("world", world_);
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms_);

  // Phase 1: every rank registers its peer-listener port.
  std::vector<Socket> clients(static_cast<std::size_t>(world_));
  std::vector<int> ports(static_cast<std::size_t>(world_), -1);
  for (int n = 0; n < world_; ++n) {
    Socket c = listener_.accept(remaining_ms(deadline));
    FrameHeader h;
    std::vector<std::byte> payload;
    PEACHY_REQUIRE(recv_frame(c, h, payload, remaining_ms(deadline)),
                   "rendezvous client closed before registering");
    PEACHY_REQUIRE(h.type == FrameType::kRegister,
                   "expected REGISTER, got frame type "
                       << static_cast<int>(h.type));
    PEACHY_REQUIRE(h.src >= 0 && h.src < world_,
                   "REGISTER from out-of-range rank " << h.src << " (world "
                                                      << world_ << ")");
    PEACHY_REQUIRE(ports[static_cast<std::size_t>(h.src)] < 0,
                   "rank " << h.src << " registered twice");
    ports[static_cast<std::size_t>(h.src)] = h.tag;
    clients[static_cast<std::size_t>(h.src)] = std::move(c);
  }

  // Phase 2: broadcast the table.
  std::vector<std::byte> table;
  for (int p : ports) append_u32(table, static_cast<std::uint32_t>(p));
  for (int r = 0; r < world_; ++r) {
    FrameHeader h;
    h.type = FrameType::kTable;
    h.src = -1;
    send_frame(clients[static_cast<std::size_t>(r)], h, table.data(),
               table.size());
  }

  if (!collect_results_) return;

  // Phase 3: collect one RESULT (or an EOF = early death) per rank.
  int outstanding = world_;
  while (outstanding > 0) {
    std::vector<pollfd> fds;
    std::vector<int> fd_rank;
    for (int r = 0; r < world_; ++r) {
      if (!clients[static_cast<std::size_t>(r)].valid()) continue;
      fds.push_back({clients[static_cast<std::size_t>(r)].fd(), POLLIN, 0});
      fd_rank.push_back(r);
    }
    const int rc = ::poll(fds.data(), fds.size(), remaining_ms(deadline));
    PEACHY_REQUIRE(rc != 0, "timed out waiting for " << outstanding
                                                     << " worker result(s)");
    if (rc < 0) continue;  // EINTR
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      const int r = fd_rank[i];
      auto& report = reports_[static_cast<std::size_t>(r)];
      Socket& c = clients[static_cast<std::size_t>(r)];
      FrameHeader h;
      std::vector<std::byte> payload;
      bool got = false;
      try {
        got = recv_frame(c, h, payload, remaining_ms(deadline));
      } catch (const Error&) {
        got = false;  // torn frame from a dying worker = no report
      }
      if (got && h.type == FrameType::kResult) {
        report = decode_report(payload);
      } else if (got) {
        continue;  // stray frame (e.g. GOODBYE); keep draining
      }
      c.close();
      --outstanding;
    }
  }
}

RendezvousSession rendezvous_register(const std::string& host, int port,
                                      int rank, int world, int my_listen_port,
                                      int timeout_ms) {
  RendezvousSession session;
  session.sock = Socket::connect_to(host, port, timeout_ms);
  FrameHeader reg;
  reg.type = FrameType::kRegister;
  reg.src = rank;
  reg.tag = my_listen_port;
  send_frame(session.sock, reg);
  FrameHeader h;
  std::vector<std::byte> payload;
  PEACHY_REQUIRE(recv_frame(session.sock, h, payload, timeout_ms),
                 "rank " << rank
                         << ": rendezvous server closed before the table");
  PEACHY_REQUIRE(h.type == FrameType::kTable, "rank " << rank
                     << ": expected TABLE, got frame type "
                     << static_cast<int>(h.type));
  PEACHY_REQUIRE(payload.size() == static_cast<std::size_t>(world) * 4,
                 "rank " << rank << ": TABLE has " << payload.size()
                         << " bytes, expected " << world * 4);
  const std::byte* p = payload.data();
  const std::byte* end = p + payload.size();
  for (int r = 0; r < world; ++r)
    session.peer_ports.push_back(static_cast<int>(read_u32(p, end)));
  return session;
}

void rendezvous_report(const Socket& sock, int rank, const WorkerReport& r) {
  const std::vector<std::byte> payload = encode_report(r);
  FrameHeader h;
  h.type = FrameType::kResult;
  h.src = rank;
  send_frame(sock, h, payload.data(), payload.size());
}

}  // namespace peachy::net
