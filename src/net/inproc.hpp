// In-process transport: ranks are threads, messages are memcpys into a
// per-rank mailbox under a mutex. This is the original mpp substrate — it
// preserves MPI's matching semantics exactly but costs nothing to "send",
// which is precisely why the TCP transport exists (ISSUE: the ghost-cell
// trade-off needs real communication costs). Kept as the fast default for
// tests and for machines where sockets are unavailable.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "net/transport.hpp"

namespace peachy::net {

/// The shared mailbox state behind one in-process world. Create one hub,
/// then one InprocTransport per rank pointing at it.
class InprocHub {
 public:
  explicit InprocHub(int ranks);

  int size() const { return ranks_; }

 private:
  friend class InprocTransport;

  struct Delivery {
    std::vector<std::byte> payload;
    MsgInfo info;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    // FIFO per (src, tag) channel — MPI's non-overtaking rule.
    std::map<std::pair<int, int>, std::deque<Delivery>> channels;
  };

  int ranks_;
  std::vector<Mailbox> mailboxes_;
};

class InprocTransport final : public Transport {
 public:
  InprocTransport(std::shared_ptr<InprocHub> hub, int rank);

  int rank() const override { return rank_; }
  int size() const override { return hub_->size(); }
  using Transport::send;  // the span overload forwards to the pointer one
  using Transport::recv;  // the no-info overload forwards to the full one
  void send(int dest, int tag, const void* data, std::size_t bytes) override;
  std::vector<std::byte> recv(int src, int tag, MsgInfo* info) override;
  bool try_recv(int src, int tag, std::vector<std::byte>& out,
                MsgInfo* info = nullptr) override;

 private:
  std::shared_ptr<InprocHub> hub_;
  int rank_;
};

}  // namespace peachy::net
