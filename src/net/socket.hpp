// RAII wrapper over POSIX TCP sockets, plus the transport error taxonomy.
//
// Everything is blocking-with-timeout: connect uses a non-blocking connect
// followed by poll(), and recv_all polls before every read so a stalled
// peer surfaces as a peachy::Error instead of a hung process. Writes use
// MSG_NOSIGNAL so a dead peer raises an exception, not SIGPIPE.
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/error.hpp"

namespace peachy::net {

/// Thrown when a peer's connection is lost for good: reset, closed without
/// a GOODBYE frame, or unresponsive past the retry budget. Carries both
/// endpoints so an 8-rank run names the dead link.
class PeerDied : public Error {
 public:
  PeerDied(int self, int peer, const std::string& why)
      : Error("rank " + std::to_string(self) + ": peer rank " +
              std::to_string(peer) + " died: " + why),
        self_(self),
        peer_(peer) {}

  int self() const { return self_; }
  int peer() const { return peer_; }

 private:
  int self_;
  int peer_;
};

/// Move-only owner of one socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Bound + listening socket on `host` (port 0 picks an ephemeral port —
  /// read it back with local_port()).
  static Socket listen_on(const std::string& host, int port, int backlog);

  /// Connects with a deadline; refused connections are retried until the
  /// deadline (the peer's listener may not be up yet during rendezvous).
  static Socket connect_to(const std::string& host, int port, int timeout_ms);

  /// Accepts one connection; throws on timeout.
  Socket accept(int timeout_ms) const;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  int local_port() const;

  /// Writes all `n` bytes; throws Error when the connection breaks or the
  /// kernel refuses bytes past the deadline (a peer that stopped reading).
  void send_all(const void* data, std::size_t n,
                int timeout_ms = 30000) const;

  /// Scatter-gather write: sends every iovec completely, in order, with as
  /// few syscalls as the kernel allows. The zero-copy framing path — a
  /// header iovec plus a payload iovec per frame, so neither headers nor
  /// payloads are ever copied into an intermediate contiguous buffer.
  /// `iov` is clobbered (advanced past written bytes). Throws like
  /// send_all on a broken connection or an expired deadline.
  void sendv_all(struct iovec* iov, int iovcnt, int timeout_ms = 30000) const;

  /// One non-blocking write attempt (MSG_DONTWAIT): returns the byte count
  /// the kernel accepted, or -1 when its buffer is full right now. Throws
  /// Error when the connection breaks. Never blocks — the backpressure
  /// path of the transport, which must not park a thread mid-write.
  ssize_t send_some(const void* data, std::size_t n) const;
  /// Scatter-gather flavor of send_some: one non-blocking sendmsg over up
  /// to IOV_MAX iovecs; -1 means the kernel buffer is full.
  ssize_t sendv_some(const struct iovec* iov, int iovcnt) const;

  /// Reads exactly `n` bytes. Returns false on clean EOF *before the first
  /// byte*; EOF mid-buffer (a torn frame) and timeouts throw.
  bool recv_all(void* data, std::size_t n, int timeout_ms) const;

  /// One non-blocking read attempt (MSG_DONTWAIT): returns the bytes read,
  /// 0 on EOF, or -1 when nothing is buffered right now. Throws Error on a
  /// broken connection. The transport reader's drain path — it must never
  /// park mid-frame while its own outbox needs service.
  ssize_t recv_some(void* data, std::size_t n) const;

  /// Half-close: no more writes from this side; reads still drain.
  void shutdown_write() const;
  /// Hard-close both directions (the fault injector's "severed link") —
  /// the peer sees EOF/reset immediately, the fd stays owned until close().
  void shutdown_both() const;
  void close();

 private:
  int fd_ = -1;
};

}  // namespace peachy::net
