#include "pap/runner.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>

#include "core/timer.hpp"
#include "obs/obs.hpp"

namespace peachy::pap {

std::string to_string(Schedule s) {
  switch (s) {
    case Schedule::kStatic: return "static";
    case Schedule::kStaticChunk1: return "static,1";
    case Schedule::kDynamic: return "dynamic";
    case Schedule::kGuided: return "guided";
    case Schedule::kWorkStealing: return "work-stealing";
  }
  return "?";
}

namespace {

void apply_schedule(Schedule s) {
  switch (s) {
    case Schedule::kStatic: omp_set_schedule(omp_sched_static, 0); break;
    case Schedule::kStaticChunk1: omp_set_schedule(omp_sched_static, 1); break;
    case Schedule::kDynamic: omp_set_schedule(omp_sched_dynamic, 1); break;
    case Schedule::kGuided: omp_set_schedule(omp_sched_guided, 1); break;
    case Schedule::kWorkStealing: break;  // runs on the task runtime
  }
}

// Tile span on the executing thread's tracer lane (any scheduling policy).
inline void obs_tile(std::int64_t t0, const Tile& t, int iter) {
  obs::Tracer::global().complete("tile", "pap", t0, now_ns(),
                                 {{"iter", iter}, {"y0", t.y0}, {"x0", t.x0}});
}

}  // namespace

Runner::Runner(TileGrid tiles, RunOptions options)
    : tiles_(tiles), options_(options) {
  if (options_.checkerboard) {
    // Two-wave execution keeps in-place kernels race-free only when no two
    // same-wave tiles can write into the same cell, which requires tiles at
    // least 2 cells wide/tall (see DESIGN.md).
    PEACHY_REQUIRE(tiles_.tile_h() >= 2 && tiles_.tile_w() >= 2,
                   "checkerboard waves need tiles >= 2x2, got "
                       << tiles_.tile_h() << "x" << tiles_.tile_w());
  }
  if (options_.trace != nullptr) {
    const int lanes_needed = lane_count();
    PEACHY_REQUIRE(options_.trace->workers() >= lanes_needed,
                   "trace has " << options_.trace->workers()
                                << " lanes, run may use " << lanes_needed);
  }
}

TaskArena& Runner::arena() const {
  return options_.arena != nullptr ? *options_.arena : TaskArena::shared();
}

int Runner::lane_count() const {
  if (options_.schedule == Schedule::kWorkStealing) {
    int lanes = static_cast<int>(arena().lanes());
    if (options_.threads > 0) lanes = std::min(lanes, options_.threads);
    return std::max(1, lanes);
  }
  return options_.threads > 0 ? options_.threads : omp_get_max_threads();
}

// Executes all tiles of one wave (or all tiles when parity < 0) and returns
// whether any tile changed.
int Runner::execute_eager(const TileKernel& kernel, int iter,
                          std::size_t* tasks, int parity_phases) {
  const int n = tiles_.count();
  TraceRecorder* trace = options_.trace;
  const bool obs_on = obs::enabled();  // hoisted: one gate per iteration

  if (options_.schedule == Schedule::kWorkStealing) {
    std::atomic<int> changed_any{0};
    std::atomic<std::size_t> executed{0};
    TaskArena::ForOptions fo;
    fo.max_workers =
        options_.threads > 0 ? static_cast<std::size_t>(options_.threads) : 0;
    fo.grain = 1;  // one tile per task, the analogue of dynamic,1
    for (int phase = 0; phase < parity_phases; ++phase) {
      const bool filter = parity_phases == 2;
      arena().parallel_for(
          static_cast<std::size_t>(n),
          [&](std::size_t lo, std::size_t hi) {
            int local_changed = 0;
            std::size_t local_executed = 0;
            for (std::size_t i = lo; i < hi; ++i) {
              const Tile t = tiles_.tile(static_cast<int>(i));
              if (filter && ((t.ty + t.tx) & 1) != phase) continue;
              const std::int64_t t0 = (trace || obs_on) ? now_ns() : 0;
              local_changed |= kernel(t, iter) ? 1 : 0;
              if (trace) {
                trace->record(TaskRecord{iter, TaskArena::current_lane(),
                                         t.y0, t.x0, t.h, t.w, t0, now_ns()});
              }
              if (obs_on) obs_tile(t0, t, iter);
              ++local_executed;
            }
            if (local_changed) changed_any.store(1, std::memory_order_relaxed);
            executed.fetch_add(local_executed, std::memory_order_relaxed);
          },
          fo);
    }
    *tasks += executed.load(std::memory_order_relaxed);
    return changed_any.load(std::memory_order_relaxed);
  }

  int changed_any = 0;
  std::size_t executed = 0;
  apply_schedule(options_.schedule);
  for (int phase = 0; phase < parity_phases; ++phase) {
    const bool filter = parity_phases == 2;
#pragma omp parallel for schedule(runtime) reduction(| : changed_any) \
    reduction(+ : executed) num_threads(options_.threads > 0 ? options_.threads \
                                                             : omp_get_max_threads())
    for (int i = 0; i < n; ++i) {
      const Tile t = tiles_.tile(i);
      if (filter && ((t.ty + t.tx) & 1) != phase) continue;
      const std::int64_t t0 = (trace || obs_on) ? now_ns() : 0;
      const bool changed = kernel(t, iter);
      if (trace) {
        trace->record(TaskRecord{iter, omp_get_thread_num(), t.y0, t.x0, t.h,
                                 t.w, t0, now_ns()});
      }
      if (obs_on) obs_tile(t0, t, iter);
      changed_any |= changed ? 1 : 0;
      ++executed;
    }
  }
  *tasks += executed;
  return changed_any;
}

// Lazy execution: only tiles in the activation bitmap run; tiles that
// change wake themselves and their 4 neighbours for the next iteration.
// All scratch (worklist, per-lane changed tiles, both bitmaps) is reused
// across iterations — steady state performs no allocation.
int Runner::execute_lazy(const TileKernel& kernel, int iter,
                         std::size_t* tasks, int parity_phases) {
  const int n = tiles_.count();
  TraceRecorder* trace = options_.trace;
  const bool obs_on = obs::enabled();  // hoisted: one gate per iteration
  const bool ws = options_.schedule == Schedule::kWorkStealing;
  if (!ws) apply_schedule(options_.schedule);
  const int num_threads =
      options_.threads > 0 ? options_.threads : omp_get_max_threads();

  for (int phase = 0; phase < parity_phases; ++phase) {
    work_.clear();
    for (int i = 0; i < n; ++i) {
      if (!active_[static_cast<std::size_t>(i)]) continue;
      if (parity_phases == 2) {
        const Tile t = tiles_.tile(i);
        if (((t.ty + t.tx) & 1) != phase) continue;
      }
      work_.push_back(i);
    }
    const int m = static_cast<int>(work_.size());
    if (ws) {
      TaskArena::ForOptions fo;
      fo.max_workers = options_.threads > 0
                           ? static_cast<std::size_t>(options_.threads)
                           : 0;
      fo.grain = 1;
      arena().parallel_for(
          static_cast<std::size_t>(m),
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t k = lo; k < hi; ++k) {
              const Tile t = tiles_.tile(work_[k]);
              const std::int64_t t0 = (trace || obs_on) ? now_ns() : 0;
              const bool changed = kernel(t, iter);
              if (trace) {
                trace->record(TaskRecord{iter, TaskArena::current_lane(),
                                         t.y0, t.x0, t.h, t.w, t0, now_ns()});
              }
              if (obs_on) obs_tile(t0, t, iter);
              if (changed)
                changed_[static_cast<std::size_t>(TaskArena::current_lane())]
                    .push_back(t.index);
            }
          },
          fo);
    } else {
#pragma omp parallel for schedule(runtime) num_threads(num_threads)
      for (int k = 0; k < m; ++k) {
        const Tile t = tiles_.tile(work_[static_cast<std::size_t>(k)]);
        const std::int64_t t0 = (trace || obs_on) ? now_ns() : 0;
        const bool changed = kernel(t, iter);
        if (trace) {
          trace->record(TaskRecord{iter, omp_get_thread_num(), t.y0, t.x0, t.h,
                                   t.w, t0, now_ns()});
        }
        if (obs_on) obs_tile(t0, t, iter);
        if (changed)
          changed_[static_cast<std::size_t>(omp_get_thread_num())]
              .push_back(t.index);
      }
    }
    *tasks += static_cast<std::size_t>(m);
  }

  // Build the next activation set serially (cheap: O(changed tiles)) into
  // the double buffer, then swap.
  std::fill(next_active_.begin(), next_active_.end(), 0);
  int changed_any = 0;
  int nb[4];
  for (auto& lane : changed_) {
    for (int idx : lane) {
      changed_any = 1;
      next_active_[static_cast<std::size_t>(idx)] = 1;
      const int count = tiles_.neighbors(idx, nb);
      for (int j = 0; j < count; ++j)
        next_active_[static_cast<std::size_t>(nb[j])] = 1;
    }
    lane.clear();
  }
  active_.swap(next_active_);
  return changed_any;
}

RunResult Runner::run(const TileKernel& kernel) {
  PEACHY_CHECK(kernel != nullptr);
  RunResult result;
  WallTimer timer;

  const bool ws = options_.schedule == Schedule::kWorkStealing;
  RuntimeCounters before;
  if (ws) before = arena().counters();

  const int parity_phases = options_.checkerboard ? 2 : 1;
  if (options_.lazy) {
    const std::size_t n = static_cast<std::size_t>(tiles_.count());
    active_.assign(n, 1);
    next_active_.assign(n, 0);
    work_.clear();
    work_.reserve(n);
    changed_.resize(static_cast<std::size_t>(lane_count()));
  }

  for (int iter = 0;; ++iter) {
    if (options_.max_iterations > 0 && iter >= options_.max_iterations) break;
    obs::Span span("pap.iteration", "pap");
    const std::size_t tasks_before = result.tasks;
    const int changed =
        options_.lazy
            ? execute_lazy(kernel, iter, &result.tasks, parity_phases)
            : execute_eager(kernel, iter, &result.tasks, parity_phases);
    span.arg("iter", iter);
    span.arg("changed", changed);
    span.arg("tasks", static_cast<std::int64_t>(result.tasks - tasks_before));
    ++result.iterations;
    if (options_.on_iteration) options_.on_iteration(iter, changed != 0);
    if (!changed) {
      result.stable = true;
      break;
    }
  }

  if (ws) result.steals = (arena().counters() - before).steals;
  result.elapsed_ns = timer.elapsed_ns();
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    static obs::Counter& runs = reg.counter("pap.runs");
    static obs::Counter& iters = reg.counter("pap.iterations");
    static obs::Counter& tile_tasks = reg.counter("pap.tile_tasks");
    static obs::Histogram& iter_ns = reg.histogram("pap.run_ns");
    runs.add(1);
    iters.add(static_cast<std::uint64_t>(result.iterations));
    tile_tasks.add(result.tasks);
    iter_ns.observe(result.elapsed_ns);
  }
  return result;
}

}  // namespace peachy::pap
