#include "pap/runner.hpp"

#include <omp.h>

#include <vector>

#include "core/timer.hpp"

namespace peachy::pap {

std::string to_string(Schedule s) {
  switch (s) {
    case Schedule::kStatic: return "static";
    case Schedule::kStaticChunk1: return "static,1";
    case Schedule::kDynamic: return "dynamic";
    case Schedule::kGuided: return "guided";
  }
  return "?";
}

namespace {

void apply_schedule(Schedule s) {
  switch (s) {
    case Schedule::kStatic: omp_set_schedule(omp_sched_static, 0); break;
    case Schedule::kStaticChunk1: omp_set_schedule(omp_sched_static, 1); break;
    case Schedule::kDynamic: omp_set_schedule(omp_sched_dynamic, 1); break;
    case Schedule::kGuided: omp_set_schedule(omp_sched_guided, 1); break;
  }
}

}  // namespace

Runner::Runner(TileGrid tiles, RunOptions options)
    : tiles_(tiles), options_(options) {
  if (options_.checkerboard) {
    // Two-wave execution keeps in-place kernels race-free only when no two
    // same-wave tiles can write into the same cell, which requires tiles at
    // least 2 cells wide/tall (see DESIGN.md).
    PEACHY_REQUIRE(tiles_.tile_h() >= 2 && tiles_.tile_w() >= 2,
                   "checkerboard waves need tiles >= 2x2, got "
                       << tiles_.tile_h() << "x" << tiles_.tile_w());
  }
  if (options_.trace != nullptr) {
    const int lanes_needed =
        options_.threads > 0 ? options_.threads : omp_get_max_threads();
    PEACHY_REQUIRE(options_.trace->workers() >= lanes_needed,
                   "trace has " << options_.trace->workers()
                                << " lanes, run may use " << lanes_needed);
  }
}

// Executes all tiles of one wave (or all tiles when parity < 0) and returns
// whether any tile changed.
int Runner::execute_eager(const TileKernel& kernel, int iter,
                          std::size_t* tasks, int parity_phases) {
  const int n = tiles_.count();
  int changed_any = 0;
  std::size_t executed = 0;
  apply_schedule(options_.schedule);
  TraceRecorder* trace = options_.trace;

  for (int phase = 0; phase < parity_phases; ++phase) {
    const bool filter = parity_phases == 2;
#pragma omp parallel for schedule(runtime) reduction(| : changed_any) \
    reduction(+ : executed) num_threads(options_.threads > 0 ? options_.threads \
                                                             : omp_get_max_threads())
    for (int i = 0; i < n; ++i) {
      const Tile t = tiles_.tile(i);
      if (filter && ((t.ty + t.tx) & 1) != phase) continue;
      const std::int64_t t0 = trace ? now_ns() : 0;
      const bool changed = kernel(t, iter);
      if (trace) {
        trace->record(TaskRecord{iter, omp_get_thread_num(), t.y0, t.x0, t.h,
                                 t.w, t0, now_ns()});
      }
      changed_any |= changed ? 1 : 0;
      ++executed;
    }
  }
  *tasks += executed;
  return changed_any;
}

// Lazy execution: only tiles in `active` run; tiles that change wake
// themselves and their 4 neighbours for the next iteration. Returns whether
// any tile changed and replaces `active` with the next activation set.
int Runner::execute_lazy(const TileKernel& kernel, int iter,
                         std::vector<std::uint8_t>& active, std::size_t* tasks,
                         int parity_phases) {
  const int n = tiles_.count();
  apply_schedule(options_.schedule);
  TraceRecorder* trace = options_.trace;
  const int num_threads =
      options_.threads > 0 ? options_.threads : omp_get_max_threads();

  // Worklist of active tiles, split by wave parity when checkerboarding.
  std::vector<int> work;
  work.reserve(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> changed_tiles(
      static_cast<std::size_t>(num_threads));

  for (int phase = 0; phase < parity_phases; ++phase) {
    work.clear();
    for (int i = 0; i < n; ++i) {
      if (!active[static_cast<std::size_t>(i)]) continue;
      if (parity_phases == 2) {
        const Tile t = tiles_.tile(i);
        if (((t.ty + t.tx) & 1) != phase) continue;
      }
      work.push_back(i);
    }
    const int m = static_cast<int>(work.size());
#pragma omp parallel for schedule(runtime) num_threads(num_threads)
    for (int k = 0; k < m; ++k) {
      const Tile t = tiles_.tile(work[static_cast<std::size_t>(k)]);
      const std::int64_t t0 = trace ? now_ns() : 0;
      const bool changed = kernel(t, iter);
      if (trace) {
        trace->record(TaskRecord{iter, omp_get_thread_num(), t.y0, t.x0, t.h,
                                 t.w, t0, now_ns()});
      }
      if (changed)
        changed_tiles[static_cast<std::size_t>(omp_get_thread_num())]
            .push_back(t.index);
    }
    *tasks += static_cast<std::size_t>(m);
  }

  // Build the next activation set serially (cheap: O(changed tiles)).
  std::vector<std::uint8_t> next(static_cast<std::size_t>(n), 0);
  int changed_any = 0;
  for (auto& lane : changed_tiles) {
    for (int idx : lane) {
      changed_any = 1;
      next[static_cast<std::size_t>(idx)] = 1;
      for (int nb : tiles_.neighbors(idx))
        next[static_cast<std::size_t>(nb)] = 1;
    }
    lane.clear();
  }
  active.swap(next);
  return changed_any;
}

RunResult Runner::run(const TileKernel& kernel) {
  PEACHY_CHECK(kernel != nullptr);
  RunResult result;
  WallTimer timer;

  const int parity_phases = options_.checkerboard ? 2 : 1;
  std::vector<std::uint8_t> active;
  if (options_.lazy)
    active.assign(static_cast<std::size_t>(tiles_.count()), 1);

  for (int iter = 0;; ++iter) {
    if (options_.max_iterations > 0 && iter >= options_.max_iterations) break;
    const int changed =
        options_.lazy
            ? execute_lazy(kernel, iter, active, &result.tasks, parity_phases)
            : execute_eager(kernel, iter, &result.tasks, parity_phases);
    ++result.iterations;
    if (options_.on_iteration) options_.on_iteration(iter, changed != 0);
    if (!changed) {
      result.stable = true;
      break;
    }
  }

  result.elapsed_ns = timer.elapsed_ns();
  return result;
}

}  // namespace peachy::pap
