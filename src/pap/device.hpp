// Queued device simulation: the GPU stand-in with an explicit memory system.
//
// Shaped after ONNXim's core loop: tiles issue DRAM requests for their
// working set into a bounded-depth request queue (at most `issue_width`
// outstanding), a single DRAM channel serves requests FIFO at
// `dram_bytes_per_us`, and responses return `dram_latency_us` after service
// completes. A tile's ALU work overlaps its memory stream — compute starts
// with the first response — so compute-bound tiles run at `cells_per_us`
// while memory-bound tiles degrade to the channel's speed. Tiles whose
// working set exceeds the scratchpad pay write-back traffic for the spilled
// portion.
//
// Runs on sim::Engine (time unit: microseconds), so batch results are
// deterministic and independent of host timing.
#pragma once

#include <cstdint>
#include <vector>

#include "pap/hybrid.hpp"

namespace peachy::pap {

/// Outcome of executing one batch of tiles back-to-back on the device.
struct DeviceBatchStats {
  double total_us = 0;             ///< wall-clock of the whole batch
  double compute_us = 0;           ///< sum of pure ALU time over tiles
  double stall_us = 0;             ///< total_us - compute_us when memory-bound
  std::uint64_t requests = 0;      ///< DRAM transactions issued
  std::uint64_t dram_bytes = 0;    ///< bytes moved over the channel
};

/// Event-driven executor for `DeviceModel`s with `queued() == true`.
class DeviceSim {
 public:
  /// Throws peachy::Error unless the model's queued-memory parameters are
  /// complete (positive bandwidth/request size/issue width/bytes per cell).
  explicit DeviceSim(DeviceModel model);

  const DeviceModel& model() const { return model_; }

  /// DRAM traffic a tile of `cells` cells generates (spill-aware).
  std::uint64_t tile_traffic_bytes(double cells) const;

  /// Closed-form single-tile estimate used for EFT lane decisions:
  /// max(ALU time, DRAM stream time) plus the first-fetch latency.
  double tile_estimate_us(double cells) const;

  /// Executes `tile_cells` sequentially through the memory queues.
  DeviceBatchStats run(const std::vector<double>& tile_cells) const;

 private:
  DeviceModel model_;
};

}  // namespace peachy::pap
