// EASYPAP-style monitoring and performance-plot output.
//
// EASYPAP ships "performance graph plot tools [and] real-time monitoring
// facilities"; headless, the equivalents are:
//  * Monitor — an IterationHook adapter that samples per-iteration wall
//    time (the curve EASYPAP plots live while the simulation runs);
//  * Experiment — a factor/metric recorder for parameter sweeps (variant x
//    threads x tile size x ...) that renders an aligned table and writes
//    the CSV students feed to their plotting scripts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "pap/runner.hpp"

namespace peachy::pap {

/// One iteration's performance sample.
struct IterationSample {
  int iteration = 0;
  std::int64_t wall_ns = 0;  ///< time spent in this iteration
  bool changed = false;
  std::uint64_t tasks = 0;   ///< runtime chunks run this iteration (watched)
  std::uint64_t steals = 0;  ///< runtime steals this iteration (watched)
  std::uint64_t dispatches = 0;  ///< parallel_for dispatches this iteration
                                 ///< (watched)
};

/// Samples per-iteration wall time through the Runner's iteration hook.
/// When watching a TaskArena, also samples per-iteration task/steal deltas
/// so traces can tell scheduling policies apart (OpenMP policies never
/// touch the arena, so their deltas stay 0).
class Monitor {
 public:
  /// Returns the hook to install as RunOptions::on_iteration; `chained`
  /// (if any) runs after sampling — chain the SyncEngine swap *first* so
  /// buffer swaps are attributed to the iteration they close:
  /// `engine.swap_hook(monitor.hook())`.
  IterationHook hook(IterationHook chained = nullptr);

  /// Samples `arena`'s task/steal counters per iteration into the samples
  /// (pass nullptr to stop watching). Watch the arena the run schedules on
  /// — TaskArena::shared() unless RunOptions::arena overrides it.
  void watch(const TaskArena* arena) { arena_ = arena; }

  const std::vector<IterationSample>& samples() const { return samples_; }
  void clear();

  /// Total wall time over all sampled iterations.
  std::int64_t total_ns() const;

  /// Total runtime steals over all sampled iterations.
  std::uint64_t total_steals() const;

  /// Writes "iteration,wall_ns,changed,tasks,steals,dispatches" rows.
  void write_csv(const std::string& path) const;

 private:
  std::vector<IterationSample> samples_;
  std::int64_t last_ns_ = 0;
  bool armed_ = false;
  const TaskArena* arena_ = nullptr;
  RuntimeCounters last_counters_;
};

/// Records (factor..., metric...) rows of a parameter sweep.
class Experiment {
 public:
  /// `factors` and `metrics` name the columns, in order.
  Experiment(std::vector<std::string> factors,
             std::vector<std::string> metrics);

  /// Appends one run's row; sizes must match the declared columns.
  void record(std::vector<std::string> factor_values,
              std::vector<double> metric_values);

  std::size_t rows() const { return rows_.size(); }

  /// Renders an aligned table of all rows (metrics with `precision`
  /// fractional digits).
  TextTable table(int precision = 2) const;

  /// Writes the sweep as CSV (header + one row per run).
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> factors_;
  std::vector<std::string> metrics_;
  struct Row {
    std::vector<std::string> factor_values;
    std::vector<double> metric_values;
  };
  std::vector<Row> rows_;
};

}  // namespace peachy::pap
