// The pap run loop: EASYPAP's execution engine, headless.
//
// A kernel variant is a callable computing one tile of one iteration and
// reporting whether any cell changed. The Runner drives it to a fixed point
// (or a fixed iteration count) under a chosen OpenMP scheduling policy, with
// optional lazy tile activation (only tiles whose neighbourhood changed last
// iteration are recomputed — the paper's second assignment), optional
// checkerboard waves (race-free in-place/async kernels — "multi-wave task
// scheduling", §II.C), and optional per-task tracing (Fig. 3).
#pragma once

#include <functional>
#include <string>

#include "pap/tile_grid.hpp"
#include "trace/trace.hpp"

namespace peachy::pap {

/// OpenMP loop scheduling policies students are asked to compare (§II.B).
enum class Schedule { kStatic, kStaticChunk1, kDynamic, kGuided };

/// Human-readable policy name ("static", "static,1", "dynamic", "guided").
std::string to_string(Schedule s);

/// Tile-level kernel: computes tile `t` of iteration `iter`; returns true
/// if any cell of the tile (or one of its neighbours, for in-place kernels)
/// changed.
using TileKernel = std::function<bool(const Tile& t, int iter)>;

/// Per-iteration hook (e.g. to swap double buffers in synchronous variants
/// or dump animation frames). Called after each completed iteration.
using IterationHook = std::function<void(int iter, bool changed)>;

/// Knobs for one run.
struct RunOptions {
  int threads = 0;          ///< 0 = use OMP default
  Schedule schedule = Schedule::kDynamic;
  bool lazy = false;        ///< lazy tile activation (assignment 2)
  bool checkerboard = false;///< two-wave execution for async kernels
  int max_iterations = 0;   ///< 0 = run until stable
  TraceRecorder* trace = nullptr;  ///< optional task tracing
  IterationHook on_iteration;      ///< optional per-iteration callback
};

/// Outcome of a run.
struct RunResult {
  int iterations = 0;        ///< iterations actually executed
  bool stable = false;       ///< reached a fixed point
  std::size_t tasks = 0;     ///< tile tasks executed (lazy runs fewer)
  std::int64_t elapsed_ns = 0;
};

/// Drives a TileKernel over a TileGrid to completion.
class Runner {
 public:
  Runner(TileGrid tiles, RunOptions options);

  const TileGrid& tiles() const { return tiles_; }
  const RunOptions& options() const { return options_; }

  /// Runs the kernel until stable or until options.max_iterations.
  RunResult run(const TileKernel& kernel);

 private:
  int execute_eager(const TileKernel& kernel, int iter, std::size_t* tasks,
                    int parity_phases);
  int execute_lazy(const TileKernel& kernel, int iter,
                   std::vector<std::uint8_t>& active, std::size_t* tasks,
                   int parity_phases);

  TileGrid tiles_;
  RunOptions options_;
};

}  // namespace peachy::pap
