// The pap run loop: EASYPAP's execution engine, headless.
//
// A kernel variant is a callable computing one tile of one iteration and
// reporting whether any cell changed. The Runner drives it to a fixed point
// (or a fixed iteration count) under a chosen scheduling policy — the four
// OpenMP loop schedules students compare, plus the work-stealing task
// runtime (core/task_runtime.hpp) — with optional lazy tile activation
// (only tiles whose neighbourhood changed last iteration are recomputed —
// the paper's second assignment), optional checkerboard waves (race-free
// in-place/async kernels — "multi-wave task scheduling", §II.C), and
// optional per-task tracing (Fig. 3).
//
// The iteration loop is allocation-free in steady state: activation
// bitmaps are double-buffered and per-lane changed-tile scratch is reused
// across iterations.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/task_runtime.hpp"
#include "pap/tile_grid.hpp"
#include "trace/trace.hpp"

namespace peachy::pap {

/// Scheduling policies: the OpenMP loop schedules students are asked to
/// compare (§II.B) plus the persistent work-stealing runtime.
enum class Schedule {
  kStatic,
  kStaticChunk1,
  kDynamic,
  kGuided,
  kWorkStealing,
};

/// Human-readable policy name ("static", "static,1", "dynamic", "guided",
/// "work-stealing").
std::string to_string(Schedule s);

/// Tile-level kernel: computes tile `t` of iteration `iter`; returns true
/// if any cell of the tile (or one of its neighbours, for in-place kernels)
/// changed.
using TileKernel = std::function<bool(const Tile& t, int iter)>;

/// Per-iteration hook (e.g. to swap double buffers in synchronous variants
/// or dump animation frames). Called after each completed iteration.
using IterationHook = std::function<void(int iter, bool changed)>;

/// Knobs for one run.
struct RunOptions {
  int threads = 0;          ///< 0 = use OMP default / all arena lanes
  Schedule schedule = Schedule::kDynamic;
  bool lazy = false;        ///< lazy tile activation (assignment 2)
  bool checkerboard = false;///< two-wave execution for async kernels
  int max_iterations = 0;   ///< 0 = run until stable
  TraceRecorder* trace = nullptr;  ///< optional task tracing
  IterationHook on_iteration;      ///< optional per-iteration callback
  TaskArena* arena = nullptr;      ///< kWorkStealing arena; nullptr = shared
};

/// Outcome of a run.
struct RunResult {
  int iterations = 0;        ///< iterations actually executed
  bool stable = false;       ///< reached a fixed point
  std::size_t tasks = 0;     ///< tile tasks executed (lazy runs fewer)
  std::int64_t elapsed_ns = 0;
  std::uint64_t steals = 0;  ///< runtime steals (kWorkStealing only)
};

/// Drives a TileKernel over a TileGrid to completion.
class Runner {
 public:
  Runner(TileGrid tiles, RunOptions options);

  const TileGrid& tiles() const { return tiles_; }
  const RunOptions& options() const { return options_; }

  /// Runs the kernel until stable or until options.max_iterations.
  RunResult run(const TileKernel& kernel);

 private:
  /// Arena backing Schedule::kWorkStealing runs.
  TaskArena& arena() const;
  /// Worker lanes a run may use (trace lane requirement and scratch width).
  int lane_count() const;

  int execute_eager(const TileKernel& kernel, int iter, std::size_t* tasks,
                    int parity_phases);
  int execute_lazy(const TileKernel& kernel, int iter, std::size_t* tasks,
                   int parity_phases);

  TileGrid tiles_;
  RunOptions options_;

  // Per-run scratch, allocated once and reused every iteration.
  std::vector<std::uint8_t> active_;       // lazy activation bitmap
  std::vector<std::uint8_t> next_active_;  // double buffer for active_
  std::vector<int> work_;                  // active tile worklist
  std::vector<std::vector<int>> changed_;  // per-lane changed tiles
};

}  // namespace peachy::pap
