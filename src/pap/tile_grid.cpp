#include "pap/tile_grid.hpp"

#include <algorithm>

namespace peachy::pap {

TileGrid::TileGrid(int height, int width, int tile_h, int tile_w)
    : height_(height), width_(width), tile_h_(tile_h), tile_w_(tile_w) {
  PEACHY_REQUIRE(height >= 1 && width >= 1,
                 "grid must be non-empty: " << height << "x" << width);
  PEACHY_REQUIRE(tile_h >= 1 && tile_w >= 1,
                 "tiles must be non-empty: " << tile_h << "x" << tile_w);
  tiles_y_ = (height + tile_h - 1) / tile_h;
  tiles_x_ = (width + tile_w - 1) / tile_w;
}

Tile TileGrid::tile(int index) const {
  PEACHY_REQUIRE(index >= 0 && index < count(),
                 "tile index " << index << " out of [0," << count() << ")");
  return tile_at(index / tiles_x_, index % tiles_x_);
}

Tile TileGrid::tile_at(int ty, int tx) const {
  PEACHY_REQUIRE(ty >= 0 && ty < tiles_y_ && tx >= 0 && tx < tiles_x_,
                 "tile (" << ty << "," << tx << ") out of " << tiles_y_ << "x"
                          << tiles_x_);
  Tile t;
  t.ty = ty;
  t.tx = tx;
  t.index = ty * tiles_x_ + tx;
  t.y0 = ty * tile_h_;
  t.x0 = tx * tile_w_;
  t.h = std::min(tile_h_, height_ - t.y0);
  t.w = std::min(tile_w_, width_ - t.x0);
  return t;
}

int TileGrid::tile_of_cell(int y, int x) const {
  PEACHY_REQUIRE(y >= 0 && y < height_ && x >= 0 && x < width_,
                 "cell (" << y << "," << x << ") out of grid");
  return (y / tile_h_) * tiles_x_ + (x / tile_w_);
}

std::vector<int> TileGrid::neighbors(int index) const {
  int buf[4];
  const int n = neighbors(index, buf);
  return std::vector<int>(buf, buf + n);
}

int TileGrid::neighbors(int index, int out[4]) const {
  const Tile t = tile(index);
  int n = 0;
  if (t.ty > 0) out[n++] = index - tiles_x_;
  if (t.ty < tiles_y_ - 1) out[n++] = index + tiles_x_;
  if (t.tx > 0) out[n++] = index - 1;
  if (t.tx < tiles_x_ - 1) out[n++] = index + 1;
  return n;
}

bool TileGrid::is_outer(int index) const {
  const Tile t = tile(index);
  return t.ty == 0 || t.tx == 0 || t.ty == tiles_y_ - 1 || t.tx == tiles_x_ - 1;
}

}  // namespace peachy::pap
