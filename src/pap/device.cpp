#include "pap/device.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "sim/engine.hpp"

namespace peachy::pap {

DeviceSim::DeviceSim(DeviceModel model) : model_(model) {
  PEACHY_REQUIRE(model_.queued(),
                 "DeviceSim needs a queued model (dram_bytes_per_us > 0)");
  PEACHY_REQUIRE(model_.cells_per_us > 0, "cells_per_us must be positive");
  PEACHY_REQUIRE(model_.dram_latency_us >= 0,
                 "dram_latency_us must be non-negative");
  PEACHY_REQUIRE(model_.dram_request_bytes > 0,
                 "dram_request_bytes must be positive");
  PEACHY_REQUIRE(model_.scratchpad_bytes > 0,
                 "scratchpad_bytes must be positive");
  PEACHY_REQUIRE(model_.issue_width >= 1, "issue_width must be >= 1");
  PEACHY_REQUIRE(model_.bytes_per_cell > 0, "bytes_per_cell must be positive");
}

std::uint64_t DeviceSim::tile_traffic_bytes(double cells) const {
  PEACHY_REQUIRE(cells >= 0, "cells must be non-negative");
  const double working_set = cells * model_.bytes_per_cell;
  // Everything streams in once; whatever does not fit in the scratchpad is
  // written back out, doubling the spilled portion's traffic.
  const double spill =
      std::max(0.0, working_set - static_cast<double>(model_.scratchpad_bytes));
  return static_cast<std::uint64_t>(std::llround(working_set + spill));
}

double DeviceSim::tile_estimate_us(double cells) const {
  const double compute = cells / model_.cells_per_us;
  const double stream = static_cast<double>(tile_traffic_bytes(cells)) /
                        model_.dram_bytes_per_us;
  return std::max(compute, stream) + model_.dram_latency_us;
}

namespace {

// One batch run: tiles execute sequentially; each tile's requests flow
// through the bounded issue window and the FIFO DRAM channel.
struct BatchRun {
  const DeviceSim& sim;
  const DeviceModel& model;
  const std::vector<double>& tiles;
  sim::Engine engine;
  DeviceBatchStats stats;

  std::size_t tile = 0;            // current tile index
  std::uint64_t to_issue = 0;      // requests not yet issued for this tile
  std::uint64_t in_flight = 0;     // issued, response not yet received
  std::uint64_t last_request = 0;  // bytes of the tile's final request
  bool compute_started = false;
  bool compute_done = false;
  double channel_free_at = 0;      // DRAM channel FIFO horizon

  BatchRun(const DeviceSim& s, const std::vector<double>& t)
      : sim(s), model(s.model()), tiles(t) {}

  DeviceBatchStats run() {
    start_tile();
    engine.run();
    stats.total_us = engine.now();
    stats.stall_us = std::max(0.0, stats.total_us - stats.compute_us);
    return stats;
  }

  void start_tile() {
    if (tile >= tiles.size()) return;
    const double cells = tiles[tile];
    const std::uint64_t traffic = sim.tile_traffic_bytes(cells);
    if (traffic == 0) {
      // Nothing to fetch: pure compute, back to back.
      const double compute = cells / model.cells_per_us;
      stats.compute_us += compute;
      engine.schedule_in(compute, [this] { next_tile(); });
      return;
    }
    stats.dram_bytes += traffic;
    to_issue =
        (traffic + model.dram_request_bytes - 1) / model.dram_request_bytes;
    last_request = traffic - (to_issue - 1) * model.dram_request_bytes;
    stats.requests += to_issue;
    compute_started = false;
    compute_done = false;
    issue();
  }

  void next_tile() {
    ++tile;
    start_tile();
  }

  // Fill the issue window; each request is serviced FIFO by the channel and
  // answered dram_latency_us after its data leaves the channel.
  void issue() {
    while (to_issue > 0 &&
           in_flight < static_cast<std::uint64_t>(model.issue_width)) {
      const std::uint64_t bytes =
          to_issue == 1 ? last_request : model.dram_request_bytes;
      --to_issue;
      ++in_flight;
      const double start = std::max(engine.now(), channel_free_at);
      channel_free_at =
          start + static_cast<double>(bytes) / model.dram_bytes_per_us;
      engine.schedule_at(channel_free_at + model.dram_latency_us,
                         [this] { on_response(); });
    }
  }

  void on_response() {
    --in_flight;
    if (!compute_started) {
      // First data arrived: the ALUs start streaming through the tile.
      compute_started = true;
      const double compute = tiles[tile] / model.cells_per_us;
      stats.compute_us += compute;
      engine.schedule_in(compute, [this] {
        compute_done = true;
        maybe_finish_tile();
      });
    }
    issue();
    maybe_finish_tile();
  }

  void maybe_finish_tile() {
    if (compute_done && to_issue == 0 && in_flight == 0) {
      compute_done = false;  // this tile is accounted for; move on
      next_tile();
    }
  }
};

}  // namespace

DeviceBatchStats DeviceSim::run(const std::vector<double>& tile_cells) const {
  for (double c : tile_cells)
    PEACHY_REQUIRE(c >= 0, "tile cell counts must be non-negative");
  BatchRun batch(*this, tile_cells);
  return batch.run();
}

}  // namespace peachy::pap
