// Hybrid CPU + accelerator execution (paper §II.B, Fig. 4).
//
// The last sandpile assignment combines OpenMP with OpenCL and asks for
// dynamic load balancing between CPU cores and a GPU. This container has no
// GPU, so the accelerator is *simulated* (DESIGN.md substitution table): the
// kernel is still executed for real on every tile — results stay exact —
// but tiles assigned to the device lane are billed at the device's modeled
// throughput. What the experiment measures (how the tile distribution and
// the modeled makespan react to the balancing policy) exercises exactly the
// scheduling logic students must write.
#pragma once

#include <cstdint>
#include <vector>

#include "pap/runner.hpp"

namespace peachy::pap {

/// Modeled CPU lane pool.
struct CpuModel {
  int workers = 4;            ///< number of CPU lanes
  double cells_per_us = 150;  ///< per-lane throughput (cells / microsecond)
};

/// Modeled throughput-oriented device (GPU stand-in).
///
/// Two operating modes. With `dram_bytes_per_us == 0` (the default) the
/// device is the legacy flat model: a tile of C cells costs
/// C / cells_per_us. Setting a DRAM bandwidth switches on the queued model
/// (see pap/device.hpp): every tile streams its working set through an
/// explicit memory request/response queue with bounded issue width, so
/// memory-bound tiles are billed at the DRAM's speed, not the ALUs' — the
/// contention the Fig. 4 balancing experiment is about.
struct DeviceModel {
  double cells_per_us = 3000;  ///< ALU throughput (cells / microsecond)
  double batch_latency_us = 80;///< per-iteration launch + transfer overhead

  // Queued-memory extension (ONNXim-shaped tile-issue loop).
  double dram_bytes_per_us = 0;      ///< DRAM bandwidth; 0 = flat model
  double dram_latency_us = 0.5;      ///< request issue -> first data
  std::size_t dram_request_bytes = 4096;   ///< DRAM transaction size
  std::size_t scratchpad_bytes = 1 << 20;  ///< on-chip capacity per tile
  int issue_width = 8;               ///< max outstanding DRAM requests
  double bytes_per_cell = 8;         ///< tile working-set footprint per cell

  bool queued() const { return dram_bytes_per_us > 0; }
};

/// Load-balancing policies the assignment compares.
enum class HybridPolicy {
  kCpuOnly,         ///< baseline: all tiles on CPU lanes
  kDeviceOnly,      ///< baseline: all tiles on the device
  kStaticFraction,  ///< fixed fraction of tiles to the device
  kDynamicEft,      ///< greedy earliest-finish-time (the "smart" balancer)
};

std::string to_string(HybridPolicy p);

struct HybridOptions {
  CpuModel cpu;
  DeviceModel device;
  HybridPolicy policy = HybridPolicy::kDynamicEft;
  double device_fraction = 0.5;  ///< used by kStaticFraction
  bool lazy = true;              ///< lazy tile activation, as in Fig. 4
  int max_iterations = 0;        ///< 0 = until stable
  TraceRecorder* trace = nullptr;///< lanes = cpu.workers + 1 (device last)
};

struct HybridResult {
  int iterations = 0;
  bool stable = false;
  std::size_t cpu_tasks = 0;
  std::size_t device_tasks = 0;
  double modeled_time_us = 0;   ///< sum over iterations of modeled makespan
  double cpu_busy_us = 0;       ///< total modeled CPU lane busy time
  double device_busy_us = 0;    ///< total modeled device busy time
  double device_stall_us = 0;   ///< queued model: time memory-stalled
  std::uint64_t device_dram_bytes = 0;  ///< queued model: DRAM traffic
};

/// Drives a TileKernel with a modeled CPU pool + device, producing the
/// Fig. 4 tile-ownership picture and modeled performance numbers.
class HybridRunner {
 public:
  HybridRunner(TileGrid tiles, HybridOptions options);

  /// Lane index used for the device in traces/owner maps.
  int device_lane() const { return options_.cpu.workers; }

  HybridResult run(const TileKernel& kernel);

  /// Owner lane of each tile during the final executed iteration
  /// (-1 = tile was stable/skipped). Valid after run().
  const std::vector<int>& last_owner() const { return last_owner_; }

 private:
  TileGrid tiles_;
  HybridOptions options_;
  std::vector<int> last_owner_;
};

}  // namespace peachy::pap
