// Hybrid CPU + accelerator execution (paper §II.B, Fig. 4).
//
// The last sandpile assignment combines OpenMP with OpenCL and asks for
// dynamic load balancing between CPU cores and a GPU. This container has no
// GPU, so the accelerator is *simulated* (DESIGN.md substitution table): the
// kernel is still executed for real on every tile — results stay exact —
// but tiles assigned to the device lane are billed at the device's modeled
// throughput. What the experiment measures (how the tile distribution and
// the modeled makespan react to the balancing policy) exercises exactly the
// scheduling logic students must write.
#pragma once

#include <vector>

#include "pap/runner.hpp"

namespace peachy::pap {

/// Modeled CPU lane pool.
struct CpuModel {
  int workers = 4;            ///< number of CPU lanes
  double cells_per_us = 150;  ///< per-lane throughput (cells / microsecond)
};

/// Modeled throughput-oriented device (GPU stand-in).
struct DeviceModel {
  double cells_per_us = 3000;  ///< device throughput (cells / microsecond)
  double batch_latency_us = 80;///< per-iteration launch + transfer overhead
};

/// Load-balancing policies the assignment compares.
enum class HybridPolicy {
  kCpuOnly,         ///< baseline: all tiles on CPU lanes
  kDeviceOnly,      ///< baseline: all tiles on the device
  kStaticFraction,  ///< fixed fraction of tiles to the device
  kDynamicEft,      ///< greedy earliest-finish-time (the "smart" balancer)
};

std::string to_string(HybridPolicy p);

struct HybridOptions {
  CpuModel cpu;
  DeviceModel device;
  HybridPolicy policy = HybridPolicy::kDynamicEft;
  double device_fraction = 0.5;  ///< used by kStaticFraction
  bool lazy = true;              ///< lazy tile activation, as in Fig. 4
  int max_iterations = 0;        ///< 0 = until stable
  TraceRecorder* trace = nullptr;///< lanes = cpu.workers + 1 (device last)
};

struct HybridResult {
  int iterations = 0;
  bool stable = false;
  std::size_t cpu_tasks = 0;
  std::size_t device_tasks = 0;
  double modeled_time_us = 0;   ///< sum over iterations of modeled makespan
  double cpu_busy_us = 0;       ///< total modeled CPU lane busy time
  double device_busy_us = 0;    ///< total modeled device busy time
};

/// Drives a TileKernel with a modeled CPU pool + device, producing the
/// Fig. 4 tile-ownership picture and modeled performance numbers.
class HybridRunner {
 public:
  HybridRunner(TileGrid tiles, HybridOptions options);

  /// Lane index used for the device in traces/owner maps.
  int device_lane() const { return options_.cpu.workers; }

  HybridResult run(const TileKernel& kernel);

  /// Owner lane of each tile during the final executed iteration
  /// (-1 = tile was stable/skipped). Valid after run().
  const std::vector<int>& last_owner() const { return last_owner_; }

 private:
  TileGrid tiles_;
  HybridOptions options_;
  std::vector<int> last_owner_;
};

}  // namespace peachy::pap
