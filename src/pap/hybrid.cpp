#include "pap/hybrid.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "core/timer.hpp"
#include "pap/device.hpp"

namespace peachy::pap {

std::string to_string(HybridPolicy p) {
  switch (p) {
    case HybridPolicy::kCpuOnly: return "cpu-only";
    case HybridPolicy::kDeviceOnly: return "device-only";
    case HybridPolicy::kStaticFraction: return "static-fraction";
    case HybridPolicy::kDynamicEft: return "dynamic-eft";
  }
  return "?";
}

HybridRunner::HybridRunner(TileGrid tiles, HybridOptions options)
    : tiles_(tiles), options_(options) {
  PEACHY_REQUIRE(options_.cpu.workers >= 1, "need >= 1 CPU lane");
  PEACHY_REQUIRE(options_.cpu.cells_per_us > 0 && options_.device.cells_per_us > 0,
                 "throughputs must be positive");
  PEACHY_REQUIRE(options_.device_fraction >= 0 && options_.device_fraction <= 1,
                 "device_fraction must be in [0,1], got "
                     << options_.device_fraction);
  if (options_.trace != nullptr)
    PEACHY_REQUIRE(options_.trace->workers() >= options_.cpu.workers + 1,
                   "trace needs cpu.workers+1 lanes");
  if (options_.device.queued())
    DeviceSim(options_.device);  // validate queued parameters up front
  last_owner_.assign(static_cast<std::size_t>(tiles_.count()), -1);
}

HybridResult HybridRunner::run(const TileKernel& kernel) {
  PEACHY_CHECK(kernel != nullptr);
  HybridResult result;
  const int n = tiles_.count();
  const int cpu_lanes = options_.cpu.workers;
  const int dev_lane = device_lane();

  std::optional<DeviceSim> device_sim;
  if (options_.device.queued()) device_sim.emplace(options_.device);

  std::vector<std::uint8_t> active(static_cast<std::size_t>(n), 1);

  for (int iter = 0;; ++iter) {
    if (options_.max_iterations > 0 && iter >= options_.max_iterations) break;

    // Collect this iteration's worklist.
    std::vector<int> work;
    for (int i = 0; i < n; ++i)
      if (!options_.lazy || active[static_cast<std::size_t>(i)])
        work.push_back(i);
    if (work.empty()) {
      result.stable = true;
      break;
    }

    // Decide tile ownership using the modeled costs.
    // Lane clocks: [0, cpu_lanes) are CPU lanes, cpu_lanes is the device.
    std::vector<double> lane_clock(static_cast<std::size_t>(cpu_lanes) + 1, 0.0);
    bool device_used = false;
    std::vector<double> device_cells;  // queued model: batch, in bill order
    std::fill(last_owner_.begin(), last_owner_.end(), -1);

    auto cost_on = [&](const Tile& t, int lane) {
      const double cells = static_cast<double>(t.h) * t.w;
      if (lane != dev_lane) return cells / options_.cpu.cells_per_us;
      // Queued devices estimate per-tile cost for lane decisions; the
      // batch is re-billed through the memory queues below.
      return device_sim ? device_sim->tile_estimate_us(cells)
                        : cells / options_.device.cells_per_us;
    };
    auto bill = [&](const Tile& t, int lane) {
      if (lane == dev_lane && !device_used) {
        device_used = true;
        lane_clock[static_cast<std::size_t>(lane)] +=
            options_.device.batch_latency_us;
      }
      lane_clock[static_cast<std::size_t>(lane)] += cost_on(t, lane);
      if (lane == dev_lane && device_sim)
        device_cells.push_back(static_cast<double>(t.h) * t.w);
      last_owner_[static_cast<std::size_t>(t.index)] = lane;
    };

    // Largest tiles first makes greedy EFT effective (LPT rule).
    std::sort(work.begin(), work.end(), [&](int a, int b) {
      const Tile ta = tiles_.tile(a), tb = tiles_.tile(b);
      return ta.h * ta.w > tb.h * tb.w;
    });

    std::size_t next_cpu_rr = 0;  // round-robin lane for non-EFT policies
    for (std::size_t k = 0; k < work.size(); ++k) {
      const Tile t = tiles_.tile(work[k]);
      int lane = 0;
      switch (options_.policy) {
        case HybridPolicy::kCpuOnly:
          lane = static_cast<int>(next_cpu_rr++ % cpu_lanes);
          break;
        case HybridPolicy::kDeviceOnly:
          lane = dev_lane;
          break;
        case HybridPolicy::kStaticFraction:
          lane = (static_cast<double>(k) <
                  options_.device_fraction * static_cast<double>(work.size()))
                     ? dev_lane
                     : static_cast<int>(next_cpu_rr++ % cpu_lanes);
          break;
        case HybridPolicy::kDynamicEft: {
          // Pick the lane with the earliest modeled finish time, charging
          // the device its batch latency if it has not fired yet.
          lane = 0;
          double best = lane_clock[0] + cost_on(t, 0);
          for (int l = 1; l <= cpu_lanes; ++l) {
            double finish = lane_clock[static_cast<std::size_t>(l)] +
                            cost_on(t, l);
            if (l == dev_lane && !device_used)
              finish += options_.device.batch_latency_us;
            if (finish < best) {
              best = finish;
              lane = l;
            }
          }
          break;
        }
      }
      bill(t, lane);
    }

    // Queued devices: replace the device lane's estimated clock with the
    // batch executed through the memory request/response queues, so the
    // iteration's makespan reflects real DRAM contention.
    if (device_sim && device_used) {
      const DeviceBatchStats batch = device_sim->run(device_cells);
      lane_clock[static_cast<std::size_t>(dev_lane)] =
          options_.device.batch_latency_us + batch.total_us;
      result.device_stall_us += batch.stall_us;
      result.device_dram_bytes += batch.dram_bytes;
    }

    // Execute every tile for real (results must be exact), attributing each
    // to its modeled owner in the trace.
    std::vector<int> changed_tiles;
    for (int idx : work) {
      const Tile t = tiles_.tile(idx);
      const std::int64_t t0 = options_.trace ? now_ns() : 0;
      const bool changed = kernel(t, iter);
      const int lane = last_owner_[static_cast<std::size_t>(idx)];
      if (options_.trace)
        options_.trace->record(
            TaskRecord{iter, lane, t.y0, t.x0, t.h, t.w, t0, now_ns()});
      if (lane == dev_lane)
        ++result.device_tasks;
      else
        ++result.cpu_tasks;
      if (changed) changed_tiles.push_back(idx);
    }

    // Account the iteration's modeled cost.
    double makespan = 0;
    for (std::size_t l = 0; l < lane_clock.size(); ++l) {
      makespan = std::max(makespan, lane_clock[l]);
      if (static_cast<int>(l) == dev_lane)
        result.device_busy_us += lane_clock[l];
      else
        result.cpu_busy_us += lane_clock[l];
    }
    result.modeled_time_us += makespan;
    ++result.iterations;

    // Next activation set.
    if (options_.lazy) {
      std::fill(active.begin(), active.end(), 0);
      for (int idx : changed_tiles) {
        active[static_cast<std::size_t>(idx)] = 1;
        for (int nb : tiles_.neighbors(idx))
          active[static_cast<std::size_t>(nb)] = 1;
      }
      if (changed_tiles.empty()) {
        result.stable = true;
        break;
      }
    } else if (changed_tiles.empty()) {
      result.stable = true;
      break;
    }
  }

  return result;
}

}  // namespace peachy::pap
