#include "pap/monitor.hpp"

#include "core/csv.hpp"
#include "core/error.hpp"
#include "core/timer.hpp"

namespace peachy::pap {

IterationHook Monitor::hook(IterationHook chained) {
  armed_ = false;
  if (arena_ != nullptr) last_counters_ = arena_->counters();
  return [this, chained = std::move(chained)](int iter, bool changed) {
    const std::int64_t now = now_ns();
    RuntimeCounters delta;
    if (arena_ != nullptr) {
      const RuntimeCounters current = arena_->counters();
      delta = current - last_counters_;
      last_counters_ = current;
    }
    if (!armed_) {
      // First callback: no start reference for iteration 0's predecessor,
      // so anchor on the runner's own start by treating the gap as the
      // iteration time (the hook fires at the END of each iteration).
      armed_ = true;
      if (iter == 0) {
        // Iteration 0's start time is unknown; estimate from this sample
        // onwards — record a zero-based anchor instead of guessing.
        samples_.push_back(
            {iter, 0, changed, delta.tasks, delta.steals, delta.dispatches});
        last_ns_ = now;
        if (chained) chained(iter, changed);
        return;
      }
    }
    samples_.push_back({iter, now - last_ns_, changed, delta.tasks,
                        delta.steals, delta.dispatches});
    last_ns_ = now;
    if (chained) chained(iter, changed);
  };
}

void Monitor::clear() {
  samples_.clear();
  last_ns_ = 0;
  armed_ = false;
  last_counters_ = RuntimeCounters{};
}

std::int64_t Monitor::total_ns() const {
  std::int64_t total = 0;
  for (const IterationSample& s : samples_) total += s.wall_ns;
  return total;
}

std::uint64_t Monitor::total_steals() const {
  std::uint64_t total = 0;
  for (const IterationSample& s : samples_) total += s.steals;
  return total;
}

void Monitor::write_csv(const std::string& path) const {
  CsvWriter csv(path);
  csv.row({"iteration", "wall_ns", "changed", "tasks", "steals", "dispatches"});
  for (const IterationSample& s : samples_)
    csv.row({std::to_string(s.iteration), std::to_string(s.wall_ns),
             s.changed ? "1" : "0", std::to_string(s.tasks),
             std::to_string(s.steals), std::to_string(s.dispatches)});
}

Experiment::Experiment(std::vector<std::string> factors,
                       std::vector<std::string> metrics)
    : factors_(std::move(factors)), metrics_(std::move(metrics)) {
  PEACHY_REQUIRE(!factors_.empty() && !metrics_.empty(),
                 "experiment needs factor and metric columns");
}

void Experiment::record(std::vector<std::string> factor_values,
                        std::vector<double> metric_values) {
  PEACHY_REQUIRE(factor_values.size() == factors_.size(),
                 "expected " << factors_.size() << " factor values, got "
                             << factor_values.size());
  PEACHY_REQUIRE(metric_values.size() == metrics_.size(),
                 "expected " << metrics_.size() << " metric values, got "
                             << metric_values.size());
  rows_.push_back(Row{std::move(factor_values), std::move(metric_values)});
}

TextTable Experiment::table(int precision) const {
  std::vector<std::string> header = factors_;
  header.insert(header.end(), metrics_.begin(), metrics_.end());
  TextTable t(std::move(header));
  for (const Row& row : rows_) {
    std::vector<std::string> cells = row.factor_values;
    for (double v : row.metric_values)
      cells.push_back(TextTable::num(v, precision));
    t.row(std::move(cells));
  }
  return t;
}

void Experiment::write_csv(const std::string& path) const {
  CsvWriter csv(path);
  std::vector<std::string> header = factors_;
  header.insert(header.end(), metrics_.begin(), metrics_.end());
  csv.row(header);
  for (const Row& row : rows_) {
    std::vector<std::string> cells = row.factor_values;
    for (double v : row.metric_values)
      cells.push_back(TextTable::num(v, 6));
    csv.row(cells);
  }
}

}  // namespace peachy::pap
