// Tile geometry for 2-D stencil grids (the EASYPAP tiling window).
#pragma once

#include <vector>

#include "core/error.hpp"

namespace peachy::pap {

/// One rectangular tile of a 2-D grid, identified by its (ty, tx) tile
/// coordinates and linear index.
struct Tile {
  int index = 0;       ///< linear index, row-major over tiles
  int ty = 0, tx = 0;  ///< tile coordinates
  int y0 = 0, x0 = 0;  ///< origin in grid cells
  int h = 0, w = 0;    ///< extent in grid cells (edge tiles may be smaller)
};

/// Decomposes a grid of height x width cells into tiles of at most
/// tile_h x tile_w cells; edge tiles are clipped (non-divisible geometry is
/// supported, as students discover the hard way).
class TileGrid {
 public:
  TileGrid(int height, int width, int tile_h, int tile_w);

  int height() const { return height_; }
  int width() const { return width_; }
  int tile_h() const { return tile_h_; }
  int tile_w() const { return tile_w_; }
  int tiles_y() const { return tiles_y_; }
  int tiles_x() const { return tiles_x_; }
  int count() const { return tiles_y_ * tiles_x_; }

  /// Tile by linear index (0 <= index < count()).
  Tile tile(int index) const;
  /// Tile by tile coordinates.
  Tile tile_at(int ty, int tx) const;
  /// Linear index of the tile containing grid cell (y, x).
  int tile_of_cell(int y, int x) const;

  /// Linear indices of the up/down/left/right tile neighbours of `index`
  /// (2 to 4 entries; used by lazy evaluation to wake neighbours).
  std::vector<int> neighbors(int index) const;

  /// Allocation-free variant: writes up to 4 neighbour indices into `out`
  /// and returns how many (the Runner's per-iteration hot path).
  int neighbors(int index, int out[4]) const;

  /// True if the tile touches the grid border (EASYPAP's "outer tiles",
  /// which carry the sink boundary and defeat vectorization).
  bool is_outer(int index) const;

 private:
  int height_, width_, tile_h_, tile_w_, tiles_y_, tiles_x_;
};

}  // namespace peachy::pap
