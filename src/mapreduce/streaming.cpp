#include "mapreduce/streaming.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/task_runtime.hpp"

namespace peachy::mr::streaming {

std::pair<std::string, std::string> split_kv(const std::string& line) {
  const std::size_t tab = line.find('\t');
  if (tab == std::string::npos) return {line, ""};
  return {line.substr(0, tab), line.substr(tab + 1)};
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      // Missing trailing newline: the final line still counts.
      end = text.size();
      lines.push_back(text.substr(start, end - start));
      break;
    }
    std::size_t len = end - start;
    if (len > 0 && text[start + len - 1] == '\r') --len;  // CRLF
    lines.push_back(text.substr(start, len));
    start = end + 1;
  }
  return lines;
}

std::vector<std::string> run_streaming(const std::vector<std::string>& input,
                                       const LineMapper& mapper,
                                       const StreamReducer& reducer,
                                       const StreamingConfig& config) {
  PEACHY_REQUIRE(mapper != nullptr && reducer != nullptr,
                 "streaming job needs a mapper and a reducer");
  PEACHY_REQUIRE(config.map_workers >= 1 && config.reduce_workers >= 1,
                 "worker counts must be >= 1");
  const int partitions =
      config.partitions > 0 ? config.partitions : config.reduce_workers;

  // --- Map phase: one split per worker chunk; each split keeps its own
  // output so the merged order is deterministic. Both phases run on the
  // process-shared work-stealing arena instead of throwaway pools.
  TaskArena& arena = TaskArena::shared();
  const int splits = 4 * config.map_workers;
  std::vector<std::vector<std::string>> map_out(
      static_cast<std::size_t>(splits));
  arena.parallel_for_index(
      static_cast<std::size_t>(splits),
      [&](std::size_t s) {
        const std::size_t lo = input.size() * s / splits;
        const std::size_t hi = input.size() * (s + 1) / splits;
        auto& out = map_out[s];
        const LineEmit emit = [&out](const std::string& line) {
          out.push_back(line);
        };
        for (std::size_t i = lo; i < hi; ++i) {
          // Tolerate CRLF input: a caller that split Windows-authored text
          // on '\n' alone leaves a trailing '\r' on every line, which would
          // otherwise leak into keys and break sorting and grouping.
          const std::string& raw = input[i];
          if (!raw.empty() && raw.back() == '\r') {
            mapper(raw.substr(0, raw.size() - 1), emit);
          } else {
            mapper(raw, emit);
          }
        }
      },
      {.max_workers = static_cast<std::size_t>(config.map_workers),
       .grain = 1});

  // --- Partition by key hash (split order preserved within a partition,
  // mirroring Hadoop's stable shuffle of this engine).
  std::vector<std::vector<std::string>> parts(
      static_cast<std::size_t>(partitions));
  for (auto& split_lines : map_out)
    for (auto& line : split_lines) {
      const auto key = split_kv(line).first;
      const auto p = std::hash<std::string>{}(key) %
                     static_cast<std::size_t>(partitions);
      parts[p].push_back(std::move(line));
    }

  // --- Sort each partition by key and run the reducer over the stream.
  std::vector<std::vector<std::string>> outputs(
      static_cast<std::size_t>(partitions));
  arena.parallel_for_index(
      static_cast<std::size_t>(partitions),
      [&](std::size_t p) {
        auto& lines = parts[p];
        std::stable_sort(lines.begin(), lines.end(),
                         [](const std::string& a, const std::string& b) {
                           return split_kv(a).first < split_kv(b).first;
                         });
        auto& out = outputs[p];
        const LineEmit emit = [&out](const std::string& line) {
          out.push_back(line);
        };
        reducer(lines, emit);
      },
      {.max_workers = static_cast<std::size_t>(config.reduce_workers),
       .grain = 1});

  std::vector<std::string> all;
  for (auto& part_out : outputs)
    for (auto& line : part_out) all.push_back(std::move(line));
  return all;
}

}  // namespace peachy::mr::streaming
