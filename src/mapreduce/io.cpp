#include "mapreduce/io.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "core/error.hpp"

namespace peachy::mr {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream is(path);
  PEACHY_REQUIRE(is.good(), "cannot open " << path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

std::vector<std::string> read_lines_in_dir(const std::string& dir,
                                           const std::string& suffix) {
  namespace fs = std::filesystem;
  PEACHY_REQUIRE(fs::is_directory(dir), dir << " is not a directory");
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!suffix.empty()) {
      if (name.size() < suffix.size() ||
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
              0)
        continue;
    }
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  std::vector<std::string> lines;
  for (const std::string& f : files)
    for (auto& line : read_lines(f)) lines.push_back(std::move(line));
  return lines;
}

std::vector<std::pair<int, std::string>> as_records(
    std::vector<std::string> lines) {
  std::vector<std::pair<int, std::string>> records;
  records.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i)
    records.emplace_back(static_cast<int>(i), std::move(lines[i]));
  return records;
}

}  // namespace peachy::mr
