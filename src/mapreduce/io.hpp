// Text input for MapReduce jobs — the HDFS-directory stand-in.
//
// Hadoop jobs consume directories of line-oriented files; these helpers
// load them into the in-memory records the engine takes, preserving
// Hadoop's ordering convention (files in name order, lines in file order).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace peachy::mr {

/// Reads a text file into lines (universal newlines; no trailing empty
/// line). Throws peachy::Error when the file cannot be opened.
std::vector<std::string> read_lines(const std::string& path);

/// Reads every regular file in `dir` whose name ends with `suffix`
/// (empty = all files), in lexicographic file-name order, concatenating
/// their lines. Throws peachy::Error if the directory cannot be read.
std::vector<std::string> read_lines_in_dir(const std::string& dir,
                                           const std::string& suffix = "");

/// Wraps lines into the (line number, line) records mr::Job consumes.
std::vector<std::pair<int, std::string>> as_records(
    std::vector<std::string> lines);

}  // namespace peachy::mr
