// A MapReduce engine (paper §III) enforcing the paradigm's three phases:
// map -> group-by-keys -> reduce, exactly the constraints the assignment
// wants students to feel ("it is difficult to reformulate a given problem
// under the severe constraints of this three-step approach").
//
// The engine is typed and in-memory, with the Hadoop execution structure:
// inputs are split across map tasks, map outputs are partitioned by a
// (pluggable) partitioner, each partition is sorted and grouped by key, and
// reducers run one partition each. Map and reduce phases run on the
// process-wide work-stealing TaskArena (no per-phase thread spawning). An
// optional combiner runs after each map task on its local output.
//
// Shuffle layout: each map task stores its output flat — one contiguous
// record vector grouped by partition with an offsets table, each partition
// slice key-sorted by the map task itself. A reducer merges its pre-sorted
// per-task runs (stable across task order) instead of re-sorting the whole
// partition.
//
// Output determinism: partitions are concatenated in partition order and
// each partition is key-sorted with per-key values in (map task, emit)
// order, so a job's output is a pure function of its input — asserted by
// tests regardless of worker count or arena width.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/task_runtime.hpp"
#include "core/timer.hpp"
#include "obs/obs.hpp"

namespace peachy::mr {

/// Collects key/value pairs emitted by a mapper, combiner or reducer.
template <typename K, typename V>
class Emitter {
 public:
  void emit(K key, V value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }

  std::vector<std::pair<K, V>>& pairs() { return pairs_; }
  const std::vector<std::pair<K, V>>& pairs() const { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// Job execution knobs.
struct JobConfig {
  int map_workers = 1;     ///< concurrency cap for the map phase
  int reduce_workers = 1;  ///< concurrency cap for the reduce phase
  int map_tasks = 0;       ///< input splits; 0 = 4x map_workers
  int partitions = 0;      ///< reduce partitions; 0 = reduce_workers
  /// Hadoop-style task containment: a map/reduce task that throws is
  /// re-dispatched (a fresh arena dispatch, so typically a different lane)
  /// up to this many extra attempts before the job fails. A retried task
  /// re-runs the same split from scratch, so output determinism survives.
  int max_task_retries = 0;
  TaskArena* arena = nullptr;  ///< nullptr = the process-shared arena
};

/// Phase counters (the numbers Hadoop prints after a job).
struct JobCounters {
  std::size_t map_inputs = 0;
  std::size_t map_outputs = 0;     ///< records emitted by mappers
  std::size_t combine_outputs = 0; ///< records after combiners (== map_outputs
                                   ///< when no combiner is configured)
  std::size_t groups = 0;          ///< distinct keys seen by reducers
  std::size_t reduce_outputs = 0;
  std::size_t shuffle_records = 0; ///< records moved into partitions
  /// Approximate payload bytes moved by the shuffle (sizeof for trivially
  /// copyable keys/values, content bytes for strings). The in-process
  /// engine moves no real bytes; this is the figure a distributed shuffle
  /// of the same job would put on the wire, and what bench/skew tooling
  /// compares against dmr's measured counts.
  std::size_t shuffle_bytes = 0;
  /// Records per partition (index = partition id) — the skew profile. A
  /// hot key shows up here as one entry dwarfing the rest.
  std::vector<std::size_t> partition_records;
  std::size_t map_task_retries = 0;    ///< re-dispatched map tasks
  std::size_t reduce_task_retries = 0; ///< re-dispatched reduce tasks
  /// Task ids ("map:3", "reduce:1") that failed every attempt. Non-empty
  /// only on a failed job — run() throws right after filling it.
  std::vector<std::string> failed_tasks;
};

/// Default partitioner: std::hash of the key modulo partition count.
/// Key types without std::hash may still be used with a single partition
/// (or by supplying a custom partitioner).
template <typename K>
struct HashPartitioner {
  int operator()(const K& key, int partitions) const {
    if constexpr (requires(const K& k) { std::hash<K>{}(k); }) {
      return static_cast<int>(std::hash<K>{}(key) %
                              static_cast<std::size_t>(partitions));
    } else {
      PEACHY_REQUIRE(partitions == 1,
                     "key type has no std::hash; supply Job::partitioner() "
                     "to use more than one partition");
      (void)key;
      return 0;
    }
  }
};

namespace detail {

/// Approximate payload footprint of one shuffled component — the unit
/// JobCounters::shuffle_bytes is measured in.
template <typename T>
std::size_t approx_bytes(const T& v) {
  if constexpr (std::is_same_v<T, std::string>) {
    return v.size();
  } else if constexpr (std::is_trivially_copyable_v<T>) {
    return sizeof(T);
  } else {
    return sizeof(T);  // best effort for exotic key/value types
  }
}

/// Groups `pairs` by key (stable sort, emit order preserved within a key)
/// and applies `combiner` per group — the Hadoop combiner contract. Shared
/// by the in-process engine and the distributed one (dmr), which must
/// pre-aggregate identically for their outputs to stay byte-identical.
template <typename K2, typename V2, typename Combiner>
std::vector<std::pair<K2, V2>> combine_pairs(std::vector<std::pair<K2, V2>> pairs,
                                             const Combiner& combiner) {
  std::stable_sort(
      pairs.begin(), pairs.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  Emitter<K2, V2> emitter;
  std::size_t i = 0;
  while (i < pairs.size()) {
    std::size_t j = i;
    std::vector<V2> values;
    while (j < pairs.size() && !(pairs[i].first < pairs[j].first) &&
           !(pairs[j].first < pairs[i].first)) {
      values.push_back(std::move(pairs[j].second));
      ++j;
    }
    combiner(pairs[i].first, values, emitter);
    i = j;
  }
  return std::move(emitter.pairs());
}

}  // namespace detail

/// A typed MapReduce job: K1/V1 input records, K2/V2 intermediate records,
/// K3/V3 output records.
///
/// Phase signatures:
///   mapper  : void(const K1&, const V1&, Emitter<K2, V2>&)
///   combiner: void(const K2&, const std::vector<V2>&, Emitter<K2, V2>&)
///   reducer : void(const K2&, const std::vector<V2>&, Emitter<K3, V3>&)
template <typename K1, typename V1, typename K2, typename V2, typename K3,
          typename V3>
class Job {
 public:
  using Mapper = std::function<void(const K1&, const V1&, Emitter<K2, V2>&)>;
  using Combiner =
      std::function<void(const K2&, const std::vector<V2>&, Emitter<K2, V2>&)>;
  using Reducer =
      std::function<void(const K2&, const std::vector<V2>&, Emitter<K3, V3>&)>;
  using Partitioner = std::function<int(const K2&, int)>;
  using ValueComparator = std::function<bool(const V2&, const V2&)>;

  Job& mapper(Mapper m) { mapper_ = std::move(m); return *this; }
  Job& combiner(Combiner c) { combiner_ = std::move(c); return *this; }
  Job& reducer(Reducer r) { reducer_ = std::move(r); return *this; }
  Job& partitioner(Partitioner p) { partitioner_ = std::move(p); return *this; }
  /// Secondary sort: orders each key group's values by `cmp` before the
  /// reducer sees them (Hadoop's secondary-sort idiom). Without it, values
  /// arrive in deterministic (map task, emit) order.
  Job& sort_values(ValueComparator cmp) {
    value_cmp_ = std::move(cmp);
    return *this;
  }
  Job& config(JobConfig cfg) { config_ = cfg; return *this; }

  const JobCounters& counters() const { return counters_; }

  /// Runs the job over `inputs` and returns all output records
  /// (partitions in order, keys sorted within each partition).
  std::vector<std::pair<K3, V3>> run(
      const std::vector<std::pair<K1, V1>>& inputs) {
    PEACHY_REQUIRE(mapper_ != nullptr, "job has no mapper");
    PEACHY_REQUIRE(reducer_ != nullptr, "job has no reducer");
    PEACHY_REQUIRE(config_.map_workers >= 1 && config_.reduce_workers >= 1,
                   "worker counts must be >= 1");
    counters_ = JobCounters{};
    counters_.map_inputs = inputs.size();

    const int splits = config_.map_tasks > 0 ? config_.map_tasks
                                             : 4 * config_.map_workers;
    const int partitions =
        config_.partitions > 0 ? config_.partitions : config_.reduce_workers;
    Partitioner partition =
        partitioner_ ? partitioner_ : Partitioner(HashPartitioner<K2>{});
    TaskArena& arena =
        config_.arena != nullptr ? *config_.arena : TaskArena::shared();

    // --- Map phase: one task per split. Each task lays its output out flat:
    // one contiguous record vector grouped by partition (offsets table says
    // where each partition's slice starts), every slice key-sorted. The
    // counting sort that builds the layout and the per-slice stable_sort
    // both preserve emit order, so a slice holds this task's records for
    // that partition in key order with ties in emit order.
    struct TaskOutput {
      std::vector<std::pair<K2, V2>> records;
      std::vector<std::size_t> offsets;  // partitions + 1 entries
    };
    obs::Span job_span("mr.job", "mr");
    job_span.arg("inputs", static_cast<std::int64_t>(inputs.size()));
    job_span.arg("splits", splits);
    job_span.arg("partitions", partitions);
    obs::Span map_span("mr.map", "mr");
    const int max_retries = std::max(0, config_.max_task_retries);
    std::vector<TaskOutput> task_out(static_cast<std::size_t>(splits));
    std::vector<std::size_t> map_out(static_cast<std::size_t>(splits), 0);
    std::vector<std::size_t> comb_out(static_cast<std::size_t>(splits), 0);
    const auto run_map_split = [&](std::size_t s) {
          // A retried split starts from scratch, so its output is identical
          // to what a first-attempt success would have produced.
          task_out[s] = TaskOutput{};
          map_out[s] = 0;
          comb_out[s] = 0;
          const std::int64_t split_t0 = obs::enabled() ? now_ns() : 0;
          const std::size_t lo = inputs.size() * s / splits;
          const std::size_t hi = inputs.size() * (s + 1) / splits;
          Emitter<K2, V2> emitter;
          for (std::size_t i = lo; i < hi; ++i)
            mapper_(inputs[i].first, inputs[i].second, emitter);
          map_out[s] = emitter.pairs().size();

          std::vector<std::pair<K2, V2>> intermediate =
              combiner_ ? detail::combine_pairs(std::move(emitter.pairs()),
                                                combiner_)
                        : std::move(emitter.pairs());
          comb_out[s] = intermediate.size();

          TaskOutput& out = task_out[s];
          const std::size_t m = intermediate.size();
          std::vector<int> pid(m);
          out.offsets.assign(static_cast<std::size_t>(partitions) + 1, 0);
          for (std::size_t i = 0; i < m; ++i) {
            const int p = partition(intermediate[i].first, partitions);
            PEACHY_REQUIRE(
                p >= 0 && p < partitions,
                "partitioner returned " << p << " of " << partitions);
            pid[i] = p;
            ++out.offsets[static_cast<std::size_t>(p) + 1];
          }
          std::partial_sum(out.offsets.begin(), out.offsets.end(),
                           out.offsets.begin());

          // Stable counting-sort scatter via an index permutation (avoids
          // requiring default-constructible records).
          std::vector<std::size_t> cursor(out.offsets.begin(),
                                          out.offsets.end() - 1);
          std::vector<std::size_t> order(m);
          for (std::size_t i = 0; i < m; ++i)
            order[cursor[static_cast<std::size_t>(pid[i])]++] = i;
          out.records.reserve(m);
          for (std::size_t k = 0; k < m; ++k)
            out.records.push_back(std::move(intermediate[order[k]]));
          for (int p = 0; p < partitions; ++p) {
            auto first = out.records.begin() +
                         static_cast<std::ptrdiff_t>(
                             out.offsets[static_cast<std::size_t>(p)]);
            auto last = out.records.begin() +
                        static_cast<std::ptrdiff_t>(
                            out.offsets[static_cast<std::size_t>(p) + 1]);
            std::stable_sort(first, last, [](const auto& a, const auto& b) {
              return a.first < b.first;
            });
          }
          if (split_t0 != 0) {
            obs::Tracer::global().complete(
                "mr.map_split", "mr", split_t0, now_ns(),
                {{"split", static_cast<std::int64_t>(s)},
                 {"records", static_cast<std::int64_t>(m)}});
          }
    };
    run_tasks_with_retries("map", static_cast<std::size_t>(splits),
                           max_retries, config_.map_workers, arena,
                           run_map_split, counters_.map_task_retries);
    for (int s = 0; s < splits; ++s) {
      counters_.map_outputs += map_out[static_cast<std::size_t>(s)];
      counters_.combine_outputs += comb_out[static_cast<std::size_t>(s)];
    }
    map_span.arg("map_outputs",
                 static_cast<std::int64_t>(counters_.map_outputs));
    map_span.close();

    // --- Shuffle + merge + reduce, one partition at a time. Each map task
    // contributes an already key-sorted run; a k-way merge that breaks key
    // ties by task index replaces the old whole-partition stable_sort and
    // yields the identical (map task, emit order) value ordering.
    obs::Span reduce_span("mr.reduce", "mr");
    std::vector<std::vector<std::pair<K3, V3>>> outputs(
        static_cast<std::size_t>(partitions));
    std::vector<std::size_t> group_counts(static_cast<std::size_t>(partitions),
                                          0);
    std::vector<std::size_t> shuffled(static_cast<std::size_t>(partitions), 0);
    std::vector<std::size_t> shuffled_bytes(
        static_cast<std::size_t>(partitions), 0);
    const auto run_reduce_partition = [&](std::size_t p) {
          outputs[p].clear();  // a retried partition starts from scratch
          group_counts[p] = 0;
          shuffled[p] = 0;
          shuffled_bytes[p] = 0;
          const std::int64_t part_t0 = obs::enabled() ? now_ns() : 0;
          struct Run {
            std::vector<std::pair<K2, V2>>* records;
            std::size_t pos, end;
          };
          std::vector<Run> runs;
          std::size_t total = 0;
          for (TaskOutput& t : task_out) {
            const std::size_t lo = t.offsets[p];
            const std::size_t hi = t.offsets[p + 1];
            if (lo < hi) {
              runs.push_back(Run{&t.records, lo, hi});
              total += hi - lo;
            }
          }
          shuffled[p] = total;

          std::vector<std::pair<K2, V2>> part;
          part.reserve(total);
          while (part.size() < total) {
            // Lowest key wins; on ties the earliest run (lowest map task
            // index) wins — the merge is stable across tasks.
            Run* best = nullptr;
            for (Run& r : runs) {
              if (r.pos == r.end) continue;
              if (best == nullptr ||
                  (*r.records)[r.pos].first < (*best->records)[best->pos].first)
                best = &r;
            }
            // With retries enabled the merge must leave the map-task runs
            // intact (a failed partition re-reads them), so it copies; the
            // fail-fast path keeps the cheaper move.
            shuffled_bytes[p] +=
                detail::approx_bytes((*best->records)[best->pos].first) +
                detail::approx_bytes((*best->records)[best->pos].second);
            if (max_retries > 0)
              part.push_back((*best->records)[best->pos]);
            else
              part.push_back(std::move((*best->records)[best->pos]));
            ++best->pos;
          }
          // The merge above IS the shuffle for this partition; the reducer
          // loop below is the reduce proper — two spans per partition.
          const std::int64_t merge_done = part_t0 != 0 ? now_ns() : 0;
          if (part_t0 != 0) {
            obs::Tracer::global().complete(
                "mr.shuffle_partition", "mr", part_t0, merge_done,
                {{"partition", static_cast<std::int64_t>(p)},
                 {"records", static_cast<std::int64_t>(total)}});
          }

          Emitter<K3, V3> emitter;
          std::size_t i = 0;
          while (i < part.size()) {
            std::size_t j = i;
            std::vector<V2> values;
            while (j < part.size() && !(part[i].first < part[j].first) &&
                   !(part[j].first < part[i].first)) {
              values.push_back(std::move(part[j].second));
              ++j;
            }
            if (value_cmp_)
              std::stable_sort(values.begin(), values.end(), value_cmp_);
            reducer_(part[i].first, values, emitter);
            ++group_counts[p];
            i = j;
          }
          outputs[p] = std::move(emitter.pairs());
          if (part_t0 != 0) {
            obs::Tracer::global().complete(
                "mr.reduce_partition", "mr", merge_done, now_ns(),
                {{"partition", static_cast<std::int64_t>(p)},
                 {"groups", static_cast<std::int64_t>(group_counts[p])}});
          }
    };
    run_tasks_with_retries("reduce", static_cast<std::size_t>(partitions),
                           max_retries, config_.reduce_workers, arena,
                           run_reduce_partition,
                           counters_.reduce_task_retries);

    std::vector<std::pair<K3, V3>> all;
    counters_.partition_records.assign(shuffled.begin(), shuffled.end());
    for (std::size_t p = 0; p < outputs.size(); ++p) {
      counters_.groups += group_counts[p];
      counters_.shuffle_records += shuffled[p];
      counters_.shuffle_bytes += shuffled_bytes[p];
      for (auto& kv : outputs[p]) all.push_back(std::move(kv));
    }
    // Every combined record lands in exactly one partition slice and the
    // merge consumes every slice — the shuffle neither drops nor duplicates.
    PEACHY_CHECK(counters_.shuffle_records == counters_.combine_outputs);
    counters_.reduce_outputs = all.size();
    reduce_span.arg("groups", static_cast<std::int64_t>(counters_.groups));
    reduce_span.arg("outputs",
                    static_cast<std::int64_t>(counters_.reduce_outputs));
    reduce_span.close();
    if (obs::enabled()) {
      obs::Registry& reg = obs::Registry::global();
      reg.counter("mr.jobs").add(1);
      reg.counter("mr.map_outputs").add(counters_.map_outputs);
      reg.counter("mr.shuffle_records").add(counters_.shuffle_records);
      reg.counter("mr.shuffle_bytes").add(counters_.shuffle_bytes);
      reg.counter("mr.reduce_outputs").add(counters_.reduce_outputs);
      reg.counter("mr.groups").add(counters_.groups);
    }
    return all;
  }

 private:
  // Runs `task(i)` for every i in [0, n) on the arena, containing per-task
  // exceptions: a failed task is re-dispatched on the next pass (a fresh
  // dispatch, so the work-stealing arena is free to place it on a different
  // lane than the one that just failed) until it succeeds or the retry
  // budget is spent. Permanent failures are recorded in
  // counters_.failed_tasks as "<phase>:<index>" and the job throws with the
  // per-task root causes.
  template <typename TaskFn>
  void run_tasks_with_retries(const char* phase, std::size_t n,
                              int max_retries, int workers, TaskArena& arena,
                              const TaskFn& task,
                              std::size_t& retry_counter) {
    std::vector<std::uint8_t> done(n, 0);
    std::vector<std::string> errors(n);
    for (int attempt = 0; attempt <= max_retries; ++attempt) {
      std::vector<std::size_t> pending;
      for (std::size_t i = 0; i < n; ++i)
        if (!done[i]) pending.push_back(i);
      if (pending.empty()) return;
      if (attempt > 0) {
        retry_counter += pending.size();
        if (obs::enabled()) {
          obs::Registry::global().counter("mr.task_retries")
              .add(pending.size());
          obs::Tracer::global().instant(
              std::string("mr.task_retry.") + phase, "mr",
              {{"tasks", static_cast<std::int64_t>(pending.size())},
               {"attempt", attempt}});
        }
      }
      arena.parallel_for_index(
          pending.size(),
          [&](std::size_t idx) {
            const std::size_t t = pending[idx];
            try {
              task(t);
              done[t] = 1;
            } catch (const std::exception& e) {
              errors[t] = e.what();
            } catch (...) {
              errors[t] = "unknown exception";
            }
          },
          {.max_workers = static_cast<std::size_t>(workers), .grain = 1});
    }
    std::size_t failed = 0;
    std::string detail;
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      ++failed;
      const std::string id = std::string(phase) + ":" + std::to_string(i);
      counters_.failed_tasks.push_back(id);
      detail += " " + id + " (" + errors[i] + ")";
    }
    if (failed == 0) return;
    if (obs::enabled())
      obs::Registry::global().counter("mr.task_failures").add(failed);
    throw Error("mapreduce: " + std::to_string(failed) + " " + phase +
                " task(s) still failing after " +
                std::to_string(max_retries + 1) + " attempt(s):" + detail);
  }

  Mapper mapper_;
  Combiner combiner_;
  Reducer reducer_;
  Partitioner partitioner_;
  ValueComparator value_cmp_;
  JobConfig config_;
  JobCounters counters_;
};

}  // namespace peachy::mr
