// Hadoop-Streaming-style text interface over the MapReduce engine.
//
// The course's assignment uses the Apache Hadoop Streaming API: mappers and
// reducers are programs that read text lines and write "key<TAB>value"
// lines; the framework sorts a reducer's whole partition by key and streams
// it in, leaving key-boundary detection to the reducer — a classic stumbling
// block this adapter preserves faithfully.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace peachy::mr::streaming {

/// Emit callback handed to mappers/reducers (one output line per call).
using LineEmit = std::function<void(const std::string& line)>;

/// A streaming mapper: one input line in, any number of "key\tvalue" lines
/// out.
using LineMapper =
    std::function<void(const std::string& line, const LineEmit& emit)>;

/// A streaming reducer: receives its whole partition as key-sorted
/// "key\tvalue" lines (like stdin of a Hadoop streaming reducer) and emits
/// output lines. It must detect key changes itself.
using StreamReducer = std::function<void(
    const std::vector<std::string>& sorted_lines, const LineEmit& emit)>;

/// Execution knobs (mirrors mr::JobConfig for the text pipeline).
struct StreamingConfig {
  int map_workers = 1;
  int reduce_workers = 1;
  int partitions = 0;  ///< 0 = reduce_workers
};

/// Splits "key\tvalue" at the first tab; a line without a tab becomes
/// (line, "").
std::pair<std::string, std::string> split_kv(const std::string& line);

/// Splits raw text into lines the way the streaming harness feeds them:
/// terminators may be "\n" or "\r\n" (Windows-authored job files), a final
/// line without a trailing newline still counts, and a trailing newline
/// does not produce a phantom empty line.
std::vector<std::string> split_lines(const std::string& text);

/// Runs the streaming job: map every input line, partition map-output lines
/// by key hash, sort each partition by key (stable within equal keys), run
/// the reducer once per partition. Output lines are concatenated in
/// partition order — deterministic for fixed partitions, independent of
/// worker counts.
std::vector<std::string> run_streaming(const std::vector<std::string>& input,
                                       const LineMapper& mapper,
                                       const StreamReducer& reducer,
                                       const StreamingConfig& config = {});

}  // namespace peachy::mr::streaming
